#include "mcn/storage/io_backend.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>

#include "mcn/common/macros.h"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define MCN_HAVE_IO_URING 1
#else
#define MCN_HAVE_IO_URING 0
#endif

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#if MCN_HAVE_IO_URING
#include <linux/io_uring.h>
#include <sys/syscall.h>
#endif

namespace mcn::storage {
namespace {

// Worker threads backing the preadv ring, in addition to the calling
// thread. Small on purpose: a turn batch is d-to-tens of pages.
constexpr int kPreadvWorkers = 3;

// Batches at or below this run a plain inline loop — waking workers costs
// more than two preads.
constexpr size_t kInlineBatchLimit = 2;

#if MCN_HAVE_IO_URING
constexpr unsigned kUringEntries = 64;

int SysIoUringSetup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, params));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(
      syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags,
              nullptr, 0));
}
#endif  // MCN_HAVE_IO_URING

Status ErrnoError(const std::string& what, int err) {
  return Status::IOError(what + ": " + std::strerror(err));
}

}  // namespace

const char* IoBackendKindName(IoBackendKind kind) {
  switch (kind) {
    case IoBackendKind::kMemory:
      return "memory";
    case IoBackendKind::kPreadv:
      return "preadv";
    case IoBackendKind::kIoUring:
      return "io_uring";
  }
  return "unknown";
}

bool IoUringCompiledIn() { return MCN_HAVE_IO_URING != 0; }

FileIoBackend::FileIoBackend(std::string path, int fd, size_t)
    : path_(std::move(path)), fd_(fd) {}

Result<std::unique_ptr<FileIoBackend>> FileIoBackend::Open(
    const std::string& path, IoBackendKind requested) {
  if (requested == IoBackendKind::kMemory) {
    return Status::InvalidArgument(
        "FileIoBackend: kMemory is the no-backend mode, not a file backend");
  }
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return ErrnoError("FileIoBackend: open(" + path + ")", errno);
  }
  std::unique_ptr<FileIoBackend> backend(
      new FileIoBackend(path, fd, /*page_size_hint=*/0));
  if (requested == IoBackendKind::kIoUring) {
    // Best effort: a refused ring (seccomp, CONFIG_IO_URING=n) degrades
    // to the worker ring; kind() tells callers which mode actually runs.
    if (backend->SetupUring().ok()) {
      backend->kind_ = IoBackendKind::kIoUring;
      return backend;
    }
  }
  backend->kind_ = IoBackendKind::kPreadv;
  backend->StartWorkers();
  return backend;
}

FileIoBackend::~FileIoBackend() {
  {
    MutexLock lock(&work_mu_);
    stopping_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
  TeardownUring();
  if (fd_ >= 0) ::close(fd_);
}

Status FileIoBackend::ReadBatch(std::span<const uint64_t> offsets,
                                std::span<std::byte* const> out,
                                size_t page_size) {
  MCN_CHECK(offsets.size() == out.size());
  if (offsets.empty()) return Status::OK();
  if (offsets.size() <= kInlineBatchLimit) {
    for (size_t i = 0; i < offsets.size(); ++i) {
      MCN_RETURN_IF_ERROR(ReadAt(out[i], page_size, offsets[i]));
    }
    return Status::OK();
  }
  MutexLock lock(&batch_mu_);
  if (kind_ == IoBackendKind::kIoUring) {
    return ReadBatchUring(offsets, out, page_size);
  }
  return ReadBatchPreadv(offsets, out, page_size);
}

Status FileIoBackend::ReadAt(std::byte* buf, size_t len,
                             uint64_t offset) const {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::pread(fd_, buf + done, len - done,
                        static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("FileIoBackend: pread(" + path_ + ")", errno);
    }
    if (n == 0) {
      return Status::IOError("FileIoBackend: short read past EOF in " + path_);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

// ---------------------------------------------------------------- io_uring

#if MCN_HAVE_IO_URING

Status FileIoBackend::SetupUring() {
  io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  ring_fd_ = SysIoUringSetup(kUringEntries, &params);
  if (ring_fd_ < 0) {
    return ErrnoError("io_uring_setup", errno);
  }
  sq_entries_ = params.sq_entries;
  cq_entries_ = params.cq_entries;
  sq_ring_bytes_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
  cq_ring_bytes_ =
      params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  sqes_bytes_ = params.sq_entries * sizeof(io_uring_sqe);

  // Modern kernels (IORING_FEAT_SINGLE_MMAP) share one ring mapping; map
  // the larger span at both offsets regardless — mapping twice is valid
  // either way and keeps the teardown uniform.
  sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
  sqes_ = ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
  if (sq_ring_ == MAP_FAILED || cq_ring_ == MAP_FAILED ||
      sqes_ == MAP_FAILED) {
    int err = errno;
    if (sq_ring_ == MAP_FAILED) sq_ring_ = nullptr;
    if (cq_ring_ == MAP_FAILED) cq_ring_ = nullptr;
    if (sqes_ == MAP_FAILED) sqes_ = nullptr;
    TeardownUring();
    return ErrnoError("io_uring mmap", err);
  }
  auto* sq = static_cast<unsigned char*>(sq_ring_);
  sq_head_ = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
  sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
  sq_mask_ = reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
  auto* cq = static_cast<unsigned char*>(cq_ring_);
  cq_head_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
  cq_tail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
  cq_mask_ = reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
  cqes_ = cq + params.cq_off.cqes;
  return Status::OK();
}

void FileIoBackend::TeardownUring() {
  if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_bytes_);
  if (cq_ring_ != nullptr) ::munmap(cq_ring_, cq_ring_bytes_);
  if (sqes_ != nullptr) ::munmap(sqes_, sqes_bytes_);
  sq_ring_ = cq_ring_ = sqes_ = nullptr;
  if (ring_fd_ >= 0) ::close(ring_fd_);
  ring_fd_ = -1;
}

Status FileIoBackend::ReadBatchUring(std::span<const uint64_t> offsets,
                                     std::span<std::byte* const> out,
                                     size_t page_size) {
  auto* sqes = static_cast<io_uring_sqe*>(sqes_);
  auto* cqes = static_cast<io_uring_cqe*>(cqes_);
  size_t submitted = 0;
  while (submitted < offsets.size()) {
    const unsigned chunk = static_cast<unsigned>(
        std::min<size_t>(sq_entries_, offsets.size() - submitted));
    unsigned tail = __atomic_load_n(sq_tail_, __ATOMIC_RELAXED);
    for (unsigned i = 0; i < chunk; ++i) {
      const unsigned index = (tail + i) & *sq_mask_;
      io_uring_sqe* sqe = &sqes[index];
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = IORING_OP_READ;
      sqe->fd = fd_;
      sqe->addr = reinterpret_cast<uint64_t>(out[submitted + i]);
      sqe->len = static_cast<unsigned>(page_size);
      sqe->off = offsets[submitted + i];
      sqe->user_data = submitted + i;
      sq_array_[index] = index;
    }
    __atomic_store_n(sq_tail_, tail + chunk, __ATOMIC_RELEASE);
    // Submit until the kernel has consumed the whole chunk. A negative
    // return means nothing was consumed this call (partial submits come
    // back as a positive count), so EINTR is a plain retry; any other
    // failure leaves published SQEs the kernel may still complete into
    // this CQ later — the ring can no longer pair CQEs with batches, so
    // poison it and serve this batch (and all future ones) via preadv.
    unsigned consumed = 0;
    while (consumed < chunk) {
      const unsigned to_submit = chunk - consumed;
      // Block for the whole chunk only on the common full-submit call; a
      // partial resubmit passes min_complete = 0 and lets the reap loop
      // wait (demanding `chunk` completions with fewer requests in
      // flight could block forever).
      const unsigned min_complete = to_submit == chunk ? chunk : 0;
      int rc = SysIoUringEnter(ring_fd_, to_submit, min_complete,
                               IORING_ENTER_GETEVENTS);
      if (rc < 0) {
        if (errno == EINTR) continue;
        TeardownUring();
        kind_ = IoBackendKind::kPreadv;
        StartWorkers();
        // Re-reading pages earlier chunks already completed is
        // idempotent: the image is immutable and read-only.
        return ReadBatchPreadv(offsets, out, page_size);
      }
      consumed += static_cast<unsigned>(rc);
    }
    // Reap exactly this chunk's completions — all of them even after a
    // read failure, so no stale CQE leaks into the next batch's count.
    Status failure;
    unsigned reaped = 0;
    unsigned head = __atomic_load_n(cq_head_, __ATOMIC_RELAXED);
    while (reaped < chunk) {
      const unsigned cq_tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
      if (head == cq_tail) {
        // min_complete == chunk should have waited, but kernels may
        // return early on signals; wait for the rest.
        int rc = SysIoUringEnter(ring_fd_, 0, chunk - reaped,
                                 IORING_ENTER_GETEVENTS);
        if (rc < 0 && errno != EINTR) {
          if (failure.ok()) {
            failure = ErrnoError("io_uring_enter (reap)", errno);
          }
          break;
        }
        continue;
      }
      const io_uring_cqe& cqe = cqes[head & *cq_mask_];
      const int res = cqe.res;
      const size_t idx = static_cast<size_t>(cqe.user_data);
      ++head;
      ++reaped;
      __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
      if (res < 0) {
        if (failure.ok()) {
          failure = ErrnoError("io_uring read(" + path_ + ")", -res);
        }
      } else if (res == 0) {
        if (failure.ok()) {
          failure =
              Status::IOError("io_uring read past EOF in " + path_);
        }
      } else if (static_cast<size_t>(res) < page_size) {
        // Legitimate kernel short read: finish the page synchronously,
        // mirroring the preadv path's single-read recovery.
        Status s = ReadAt(out[idx] + res,
                          page_size - static_cast<size_t>(res),
                          offsets[idx] + static_cast<uint64_t>(res));
        if (!s.ok() && failure.ok()) failure = std::move(s);
      }
    }
    if (reaped < chunk) {
      // Reap-side enter failed terminally with completions still owed:
      // same poisoned-ring situation as a failed submit.
      TeardownUring();
      kind_ = IoBackendKind::kPreadv;
      StartWorkers();
      return failure;
    }
    MCN_RETURN_IF_ERROR(failure);
    submitted += chunk;
  }
  return Status::OK();
}

#else  // !MCN_HAVE_IO_URING

Status FileIoBackend::SetupUring() {
  return Status::Unimplemented("io_uring not compiled in");
}
void FileIoBackend::TeardownUring() {}
Status FileIoBackend::ReadBatchUring(std::span<const uint64_t>,
                                     std::span<std::byte* const>, size_t) {
  return Status::Unimplemented("io_uring not compiled in");
}

#endif  // MCN_HAVE_IO_URING

// ------------------------------------------------------- preadv worker ring

void FileIoBackend::StartWorkers() {
  workers_.reserve(kPreadvWorkers);
  for (int i = 0; i < kPreadvWorkers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void FileIoBackend::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      MutexLock lock(&work_mu_);
      while (!stopping_ && generation_ == seen_generation) {
        work_cv_.Wait(&work_mu_);
      }
      if (stopping_) return;
      seen_generation = generation_;
    }
    DrainRuns();
  }
}

void FileIoBackend::DrainRuns() {
  Batch* batch;
  {
    // Register as a drainer under the same lock that publishes
    // `current_`: from here until the decrement below, the batch owner
    // in ReadBatchPreadv cannot return (and destroy the stack Batch)
    // even if this drainer claims no run.
    MutexLock lock(&work_mu_);
    batch = current_;
    if (batch == nullptr) return;
    ++drainers_;
  }
  for (;;) {
    const size_t run_index =
        batch->next_run.fetch_add(1, std::memory_order_relaxed);
    if (run_index >= batch->runs.size()) break;
    const Run& run = batch->runs[run_index];
    // One preadv per run of file-consecutive pages: the iovec list
    // points at the batch's (scattered) destination buffers.
    iovec iov[64];
    size_t page = 0;
    while (page < run.count && batch->first_errno.load(
                                   std::memory_order_relaxed) == 0) {
      const size_t take = std::min<size_t>(run.count - page, 64);
      for (size_t j = 0; j < take; ++j) {
        iov[j].iov_base = batch->bufs[run.first + page + j];
        iov[j].iov_len = batch->page_size;
      }
      size_t want = take * batch->page_size;
      uint64_t offset = batch->offsets[run.first + page];
      // preadv may return short; re-issue a plain loop on shortness.
      ssize_t n = ::preadv(fd_, iov, static_cast<int>(take),
                           static_cast<off_t>(offset));
      if (n < 0 && errno == EINTR) continue;
      if (n < 0) {
        int expected = 0;
        batch->first_errno.compare_exchange_strong(expected, errno);
        break;
      }
      if (static_cast<size_t>(n) != want) {
        // Short vectored read (EOF straddle or kernel split): finish the
        // affected pages with the single-read loop.
        for (size_t j = 0; j < take; ++j) {
          Status s = ReadAt(batch->bufs[run.first + page + j],
                            batch->page_size,
                            batch->offsets[run.first + page + j]);
          if (!s.ok()) {
            int expected = 0;
            batch->first_errno.compare_exchange_strong(expected, EIO);
            break;
          }
        }
      }
      page += take;
    }
    batch->remaining_runs.fetch_sub(1, std::memory_order_acq_rel);
  }
  {
    // Deregister under the lock, then notify: the owner waits for both
    // remaining_runs == 0 and drainers_ == 0, so notifying only here
    // (after the last touch of `batch`) covers both conditions without
    // a lost wakeup — a completer that got here between the owner's
    // predicate check and its block notifies after the lock round-trip.
    MutexLock lock(&work_mu_);
    --drainers_;
  }
  done_cv_.NotifyAll();
}

Status FileIoBackend::ReadBatchPreadv(std::span<const uint64_t> offsets,
                                      std::span<std::byte* const> out,
                                      size_t page_size) {
  Batch batch;
  batch.offsets = offsets.data();
  batch.bufs = out.data();
  batch.page_size = page_size;
  // Coalesce file-consecutive pages into preadv runs.
  size_t start = 0;
  for (size_t i = 1; i <= offsets.size(); ++i) {
    if (i == offsets.size() ||
        offsets[i] != offsets[i - 1] + page_size) {
      batch.runs.push_back(Run{start, i - start});
      start = i;
    }
  }
  batch.remaining_runs.store(batch.runs.size(), std::memory_order_relaxed);
  {
    MutexLock lock(&work_mu_);
    current_ = &batch;
    ++generation_;
  }
  work_cv_.NotifyAll();
  // The caller participates instead of idling.
  DrainRuns();
  {
    // Wait for the work to finish AND for every drainer to let go of the
    // batch pointer: a late-waking worker may hold `&batch` without ever
    // claiming a run, and returning before it exits would hand it a
    // dangling pointer to this stack frame.
    MutexLock lock(&work_mu_);
    while (batch.remaining_runs.load(std::memory_order_acquire) != 0 ||
           drainers_ != 0) {
      done_cv_.Wait(&work_mu_);
    }
    current_ = nullptr;
  }
  const int err = batch.first_errno.load(std::memory_order_relaxed);
  if (err != 0) {
    return ErrnoError("FileIoBackend: preadv(" + path_ + ")", err);
  }
  return Status::OK();
}

}  // namespace mcn::storage
