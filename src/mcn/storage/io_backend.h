// File-backed batched read backend for DiskManager (DESIGN.md §13).
//
// The in-memory DiskManager stays the data plane; this backend is the
// *physical* I/O plane behind `DiskManager::ReadPagesBatch`: it serves
// kPageSize reads at arbitrary byte offsets of one on-disk image file
// (the MCNDISK1 spill written at attach time), completing a whole batch
// before returning — which is exactly the per-turn overlapped fetch the
// ParallelProbeScheduler issues at a turn barrier.
//
// Two real implementations behind one kind switch:
//
//   kIoUring — one io_uring (raw syscalls; no liburing dependency) with
//              IORING_OP_READ SQEs, submitted batch-at-a-time with
//              IORING_ENTER_GETEVENTS so a batch costs one syscall per
//              sq-ring-full chunk. Compile-gated on <linux/io_uring.h>;
//              if ring setup fails at runtime (seccomp, old kernel) Open
//              silently degrades to kPreadv and reports the degraded kind.
//   kPreadv  — a small persistent worker ring (caller participates) that
//              splits the batch into runs of file-consecutive pages, one
//              preadv per run; the portable fallback.
//
// kMemory is DiskManager's native mode (no backend attached) and is never
// a valid argument to Open; it exists so call sites can name all three
// states of the runtime switch (`MCN_IO_BACKEND=auto|preadv|io_uring`).
#ifndef MCN_STORAGE_IO_BACKEND_H_
#define MCN_STORAGE_IO_BACKEND_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "mcn/common/mutex.h"
#include "mcn/common/result.h"
#include "mcn/common/status.h"
#include "mcn/common/thread_annotations.h"

namespace mcn::storage {

/// Physical read path of a DiskManager. kMemory = no backend attached
/// (reads served from the in-memory page vectors, the historical mode).
enum class IoBackendKind {
  kMemory = 0,
  kPreadv,
  kIoUring,
};

const char* IoBackendKindName(IoBackendKind kind);

/// True when this build carries the io_uring implementation (the kernel
/// may still refuse at runtime; Open degrades to kPreadv then).
bool IoUringCompiledIn();

/// Batched positional reader over one immutable image file. Thread-safe:
/// concurrent ReadBatch calls are serialized internally (one in-flight
/// batch owns the ring / worker set at a time).
class FileIoBackend {
 public:
  /// Opens `path` read-only. `requested` must be kPreadv or kIoUring;
  /// kIoUring falls back to kPreadv when the ring cannot be set up (the
  /// actual mode is what kind() reports — callers surface it in bench
  /// rows and metrics rather than failing).
  static Result<std::unique_ptr<FileIoBackend>> Open(const std::string& path,
                                                     IoBackendKind requested);

  ~FileIoBackend();
  FileIoBackend(const FileIoBackend&) = delete;
  FileIoBackend& operator=(const FileIoBackend&) = delete;

  IoBackendKind kind() const { return kind_; }
  const std::string& path() const { return path_; }

  /// Reads `page_size` bytes at offsets[i] into out[i] for every i; the
  /// whole batch completes (or the first failure aborts it) before
  /// returning. Spans must be the same length.
  Status ReadBatch(std::span<const uint64_t> offsets,
                   std::span<std::byte* const> out, size_t page_size);

 private:
  FileIoBackend(std::string path, int fd, size_t page_size_hint);

  Status SetupUring();
  void TeardownUring();
  Status ReadBatchUring(std::span<const uint64_t> offsets,
                        std::span<std::byte* const> out, size_t page_size);
  Status ReadBatchPreadv(std::span<const uint64_t> offsets,
                         std::span<std::byte* const> out, size_t page_size);
  /// One fully-read pread loop (handles short reads).
  Status ReadAt(std::byte* buf, size_t len, uint64_t offset) const;

  void StartWorkers();
  void WorkerLoop();
  /// Pulls run indices from the shared batch until exhausted.
  void DrainRuns();

  std::string path_;
  int fd_ = -1;
  IoBackendKind kind_ = IoBackendKind::kPreadv;

  /// One batch in flight at a time, either path. A pure serialization
  /// capability: the ring/worker state it protects is the whole io_uring
  /// block below plus the Batch hand-off machinery, touched only by the
  /// thread holding it (workers reach the Batch through `current_`,
  /// which has its own guard).
  Mutex batch_mu_;

  // --- io_uring state (raw syscalls; valid when kind_ == kIoUring) ---
  int ring_fd_ = -1;
  void* sq_ring_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  void* cq_ring_ = nullptr;
  size_t cq_ring_bytes_ = 0;
  void* sqes_ = nullptr;
  size_t sqes_bytes_ = 0;
  unsigned sq_entries_ = 0;
  unsigned cq_entries_ = 0;
  // Cached ring pointers (into the mmaps).
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_mask_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned* cq_mask_ = nullptr;
  void* cqes_ = nullptr;

  // --- preadv worker-ring state ---
  struct Run {
    size_t first = 0;  ///< index into the batch
    size_t count = 0;  ///< file-consecutive pages starting at `first`
  };
  struct Batch {
    const uint64_t* offsets = nullptr;
    std::byte* const* bufs = nullptr;
    size_t page_size = 0;
    std::vector<Run> runs;
    std::atomic<size_t> next_run{0};
    std::atomic<size_t> remaining_runs{0};
    std::atomic<int> first_errno{0};
  };
  Mutex work_mu_;
  CondVar work_cv_;
  CondVar done_cv_;
  /// Bumped per batch.
  uint64_t generation_ MCN_GUARDED_BY(work_mu_) = 0;
  bool stopping_ MCN_GUARDED_BY(work_mu_) = false;
  Batch* current_ MCN_GUARDED_BY(work_mu_) = nullptr;
  /// Workers currently inside DrainRuns holding a `current_` pointer.
  /// The batch owner must wait for this to reach zero before letting its
  /// stack-allocated Batch die: a worker that grabbed the pointer but
  /// claimed no run touches the Batch after remaining_runs hits zero.
  size_t drainers_ MCN_GUARDED_BY(work_mu_) = 0;
  std::vector<std::thread> workers_;
};

}  // namespace mcn::storage

#endif  // MCN_STORAGE_IO_BACKEND_H_
