// Page identifiers and constants for the paged storage layer.
#ifndef MCN_STORAGE_PAGE_H_
#define MCN_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace mcn::storage {

/// Size of every page in the simulated disk, in bytes.
inline constexpr uint32_t kPageSize = 4096;

using FileId = uint32_t;
using PageNo = uint32_t;

inline constexpr PageNo kInvalidPageNo = 0xFFFFFFFFu;

/// Globally unique page address: (file, page number).
struct PageId {
  FileId file = 0;
  PageNo page = kInvalidPageNo;

  bool operator==(const PageId& o) const {
    return file == o.file && page == o.page;
  }
};

struct PageIdHash {
  size_t operator()(const PageId& id) const {
    uint64_t v = (static_cast<uint64_t>(id.file) << 32) | id.page;
    // splitmix-style mix.
    v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9ull;
    v = (v ^ (v >> 27)) * 0x94D049BB133111EBull;
    return static_cast<size_t>(v ^ (v >> 31));
  }
};

}  // namespace mcn::storage

#endif  // MCN_STORAGE_PAGE_H_
