// Page identifiers and constants for the paged storage layer.
#ifndef MCN_STORAGE_PAGE_H_
#define MCN_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "mcn/common/hash.h"

namespace mcn::storage {

/// Size of every page in the simulated disk, in bytes.
inline constexpr uint32_t kPageSize = 4096;

using FileId = uint32_t;
using PageNo = uint32_t;

inline constexpr PageNo kInvalidPageNo = 0xFFFFFFFFu;

/// Globally unique page address: (file, page number).
struct PageId {
  FileId file = 0;
  PageNo page = kInvalidPageNo;

  bool operator==(const PageId& o) const {
    return file == o.file && page == o.page;
  }

  uint64_t Pack() const {
    return (static_cast<uint64_t>(file) << 32) | page;
  }
};

struct PageIdHash {
  size_t operator()(const PageId& id) const {
    return static_cast<size_t>(MixU64(id.Pack()));
  }
};

}  // namespace mcn::storage

#endif  // MCN_STORAGE_PAGE_H_
