#include "mcn/storage/persistence.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "mcn/common/macros.h"

namespace mcn::storage {
namespace {

constexpr char kMagic[8] = {'M', 'C', 'N', 'D', 'I', 'S', 'K', '1'};

template <typename T>
void Write(std::ofstream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadValue(std::istream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return in.good();
}

}  // namespace

Status SaveDiskImage(const DiskManager& disk, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic));
  Write<uint32_t>(out, static_cast<uint32_t>(disk.num_files()));
  for (FileId f = 0; f < disk.num_files(); ++f) {
    MCN_ASSIGN_OR_RETURN(std::string name, disk.FileName(f));
    Write<uint32_t>(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    MCN_ASSIGN_OR_RETURN(uint32_t pages, disk.NumPages(f));
    Write<uint32_t>(out, pages);
    for (PageNo p = 0; p < pages; ++p) {
      MCN_ASSIGN_OR_RETURN(const std::byte* data, disk.PageData({f, p}));
      out.write(reinterpret_cast<const char*>(data), kPageSize);
    }
  }
  if (!out.good()) return Status::IOError("write to " + path + " failed");
  return Status::OK();
}

Result<DiskManager> LoadDiskImage(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not an mcn disk image");
  }
  uint32_t num_files = 0;
  if (!ReadValue(in, &num_files) || num_files > 1024) {
    return Status::Corruption("implausible file count");
  }
  DiskManager disk;
  std::vector<std::byte> buf(kPageSize);
  for (uint32_t f = 0; f < num_files; ++f) {
    uint32_t name_len = 0;
    if (!ReadValue(in, &name_len) || name_len > 4096) {
      return Status::Corruption("implausible file name length");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    uint32_t pages = 0;
    if (!in.good() || !ReadValue(in, &pages)) {
      return Status::Corruption("truncated file header");
    }
    FileId id = disk.CreateFile(std::move(name));
    for (PageNo p = 0; p < pages; ++p) {
      in.read(reinterpret_cast<char*>(buf.data()), kPageSize);
      if (!in.good()) return Status::Corruption("truncated page data");
      MCN_ASSIGN_OR_RETURN(PageNo got, disk.AllocatePage(id));
      if (got != p) return Status::Internal("page allocation out of order");
      MCN_RETURN_IF_ERROR(disk.WritePage({id, p}, buf.data()));
    }
  }
  disk.ResetStats();  // load I/O is not query I/O
  return disk;
}

Result<DiskManager> LoadDiskImage(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  Result<DiskManager> result = LoadDiskImage(in);
  if (!result.ok()) {
    return Status(result.status().code(),
                  path + ": " + result.status().message());
  }
  return result;
}

Result<DiskManager> LoadDiskImageFromBuffer(std::string_view bytes) {
  std::istringstream in(std::string(bytes), std::ios::binary);
  return LoadDiskImage(in);
}

}  // namespace mcn::storage
