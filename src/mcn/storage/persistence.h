// Persistence for the simulated disk: dump the entire DiskManager image
// (all paged files) to one real file and load it back, so a built network
// database can be reused across processes. The companion catalog functions
// in mcn/net/catalog.h persist the NetworkFiles metadata (file ids, tree
// roots, counts) needed to reopen the stored structures.
//
// Image format (little-endian, host-order — the simulated disk never
// crosses architectures):
//   [8]  magic "MCNDISK1"
//   [u32] num_files
//   per file: [u32 name_len][name bytes][u32 num_pages][pages raw]
#ifndef MCN_STORAGE_PERSISTENCE_H_
#define MCN_STORAGE_PERSISTENCE_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "mcn/common/result.h"
#include "mcn/storage/disk_manager.h"

namespace mcn::storage {

/// Writes the full disk image to `path` (overwriting).
Status SaveDiskImage(const DiskManager& disk, const std::string& path);

/// Reads a disk image previously written by SaveDiskImage.
Result<DiskManager> LoadDiskImage(const std::string& path);

/// Parses a disk image from an already-open stream positioned at the
/// magic. Untrusted-input seam: every malformed prefix must come back as
/// a Status, never a crash (the disk-image fuzz target drives this).
Result<DiskManager> LoadDiskImage(std::istream& in);

/// Parses a disk image held entirely in memory (no filesystem access).
Result<DiskManager> LoadDiskImageFromBuffer(std::string_view bytes);

}  // namespace mcn::storage

#endif  // MCN_STORAGE_PERSISTENCE_H_
