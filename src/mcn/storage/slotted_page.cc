#include "mcn/storage/slotted_page.h"

#include <cstring>

#include "mcn/common/macros.h"

namespace mcn::storage {
namespace {

constexpr size_t kHeaderBytes = 4;   // slot_count + free_end
constexpr size_t kSlotBytes = 4;     // offset + length

uint16_t Load16(const std::byte* p) {
  uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void Store16(std::byte* p, uint16_t v) { std::memcpy(p, &v, sizeof(v)); }

}  // namespace

SlottedPageBuilder::SlottedPageBuilder(std::byte* page) : page_(page) {
  Store16(page_, 0);                                    // slot_count
  Store16(page_ + 2, static_cast<uint16_t>(kPageSize));  // free_end
}

uint16_t SlottedPageBuilder::count() const { return Load16(page_); }

size_t SlottedPageBuilder::free_bytes() const {
  uint16_t n = count();
  uint16_t free_end = Load16(page_ + 2);
  size_t dir_end = kHeaderBytes + kSlotBytes * n;
  MCN_DCHECK(free_end >= dir_end);
  return free_end - dir_end;
}

bool SlottedPageBuilder::Fits(size_t size) const {
  return free_bytes() >= size + kSlotBytes;
}

size_t SlottedPageBuilder::MaxRecordSize() {
  return kPageSize - kHeaderBytes - kSlotBytes;
}

bool SlottedPageBuilder::TryAppend(std::span<const std::byte> record,
                                   uint16_t* slot_out) {
  if (!Fits(record.size())) return false;
  uint16_t n = count();
  uint16_t free_end = Load16(page_ + 2);
  uint16_t offset = static_cast<uint16_t>(free_end - record.size());
  if (!record.empty()) {
    std::memcpy(page_ + offset, record.data(), record.size());
  }
  std::byte* slot_entry = page_ + kHeaderBytes + kSlotBytes * n;
  Store16(slot_entry, offset);
  Store16(slot_entry + 2, static_cast<uint16_t>(record.size()));
  Store16(page_, static_cast<uint16_t>(n + 1));
  Store16(page_ + 2, offset);
  if (slot_out != nullptr) *slot_out = n;
  return true;
}

SlottedPageReader::SlottedPageReader(const std::byte* page) : page_(page) {}

uint16_t SlottedPageReader::count() const { return Load16(page_); }

std::span<const std::byte> SlottedPageReader::Record(uint16_t slot) const {
  MCN_CHECK(slot < count());
  const std::byte* slot_entry = page_ + kHeaderBytes + kSlotBytes * slot;
  uint16_t offset = Load16(slot_entry);
  uint16_t length = Load16(slot_entry + 2);
  MCN_CHECK(static_cast<size_t>(offset) + length <= kPageSize);
  return {page_ + offset, length};
}

Result<std::span<const std::byte>> SlottedPageReader::TryRecord(
    uint16_t slot) const {
  const size_t dir_end = kHeaderBytes + kSlotBytes * (size_t{slot} + 1);
  if (slot >= count() || dir_end > kPageSize) {
    return Status::Corruption("slotted page: slot out of range");
  }
  const std::byte* slot_entry = page_ + kHeaderBytes + kSlotBytes * slot;
  uint16_t offset = Load16(slot_entry);
  uint16_t length = Load16(slot_entry + 2);
  if (static_cast<size_t>(offset) + length > kPageSize) {
    return Status::Corruption("slotted page: record overruns page");
  }
  return std::span<const std::byte>{page_ + offset, length};
}

}  // namespace mcn::storage
