// Slotted page layout: variable-length records addressed by (page, slot).
// Used by the adjacency file and the facility file of the paper's storage
// scheme (Fig. 2).
//
// Layout:
//   [u16 slot_count][u16 free_end] [slot_count x {u16 offset, u16 length}]
//   ... free space ... [records packed towards the end of the page]
#ifndef MCN_STORAGE_SLOTTED_PAGE_H_
#define MCN_STORAGE_SLOTTED_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "mcn/common/result.h"
#include "mcn/storage/page.h"

namespace mcn::storage {

/// Builds a slotted page in a caller-provided kPageSize buffer.
class SlottedPageBuilder {
 public:
  /// `page` must point to kPageSize zeroed bytes.
  explicit SlottedPageBuilder(std::byte* page);

  /// Appends `record`; returns false when it does not fit. On success,
  /// `*slot_out` (optional) receives the slot index.
  bool TryAppend(std::span<const std::byte> record, uint16_t* slot_out);

  /// Whether a record of `size` bytes would fit.
  bool Fits(size_t size) const;

  uint16_t count() const;
  size_t free_bytes() const;

  /// Largest record an empty page can hold.
  static size_t MaxRecordSize();

 private:
  std::byte* page_;
};

/// Read-only view over a slotted page.
class SlottedPageReader {
 public:
  /// `page` must point to kPageSize bytes laid out by SlottedPageBuilder.
  explicit SlottedPageReader(const std::byte* page);

  uint16_t count() const;

  /// Record bytes for `slot`; slot must be < count(). Trusts the page
  /// layout (self-built pages on the query path); corrupt directories
  /// are a fatal invariant violation here, use TryRecord for pages of
  /// untrusted provenance.
  std::span<const std::byte> Record(uint16_t slot) const;

  /// Bounds-checked record access for pages of untrusted provenance
  /// (e.g. a loaded disk image): a slot out of range, a directory entry
  /// past the page end, or a record overrunning the page comes back as
  /// Corruption instead of aborting.
  Result<std::span<const std::byte>> TryRecord(uint16_t slot) const;

 private:
  const std::byte* page_;
};

}  // namespace mcn::storage

#endif  // MCN_STORAGE_SLOTTED_PAGE_H_
