#include <algorithm>
#include <numeric>
#include <queue>
#include <unordered_map>

#include "mcn/common/macros.h"
#include "mcn/expand/dijkstra.h"
#include "mcn/topk/topk.h"

namespace mcn::topk {
namespace {

struct Partial {
  graph::CostVector values;
  uint32_t known_mask = 0;
  int known_count = 0;
};

}  // namespace

std::vector<RankedItem> NoRandomAccessTopK(
    std::span<const skyline::Tuple> data, const algo::AggregateFn& f, int k,
    NraStats* stats) {
  MCN_CHECK(k >= 1);
  NraStats local;
  if (data.empty()) {
    if (stats != nullptr) *stats = local;
    return {};
  }
  int d = data[0].values.dim();

  // Ascending per-attribute orderings.
  std::vector<std::vector<uint32_t>> lists(d);
  for (int i = 0; i < d; ++i) {
    lists[i].resize(data.size());
    std::iota(lists[i].begin(), lists[i].end(), 0);
    std::stable_sort(lists[i].begin(), lists[i].end(),
                     [&, i](uint32_t a, uint32_t b) {
                       return data[a].values[i] < data[b].values[i];
                     });
  }

  std::unordered_map<uint32_t, Partial> seen;  // by tuple index
  // Complete tuples, max-heap of the k best.
  std::priority_queue<std::pair<double, uint32_t>> best;
  graph::CostVector frontier(d, 0.0);

  auto kth = [&]() {
    return static_cast<int>(best.size()) >= k
               ? best.top().first
               : expand::kInfCost;
  };

  size_t pos = 0;
  for (; pos < data.size(); ++pos) {
    ++local.rounds;
    for (int i = 0; i < d; ++i) {
      uint32_t idx = lists[i][pos];
      ++local.sorted_accesses;
      frontier[i] = data[idx].values[i];
      Partial& p = seen[idx];
      if (p.known_count == 0) p.values = graph::CostVector(d, 0.0);
      if (!((p.known_mask >> i) & 1u)) {
        p.values[i] = data[idx].values[i];
        p.known_mask |= 1u << i;
        ++p.known_count;
        if (p.known_count == d) {
          double score = f(p.values);
          if (static_cast<int>(best.size()) < k) {
            best.push({score, idx});
          } else if (score < best.top().first) {
            best.pop();
            best.push({score, idx});
          }
        }
      }
    }
    // Safe-stop test: no incomplete or unseen tuple's lower bound can beat
    // the current k-th complete score.
    double kth_score = kth();
    if (kth_score == expand::kInfCost) continue;
    bool safe = f(frontier) >= kth_score;  // covers unseen tuples
    if (safe) {
      for (const auto& [idx, p] : seen) {
        if (p.known_count == d) continue;
        graph::CostVector lb = p.values;
        for (int i = 0; i < d; ++i) {
          if (!((p.known_mask >> i) & 1u)) lb[i] = frontier[i];
        }
        if (f(lb) < kth_score) {
          safe = false;
          break;
        }
      }
    }
    if (safe) break;
  }

  std::vector<RankedItem> out;
  out.reserve(best.size());
  while (!best.empty()) {
    out.push_back(RankedItem{data[best.top().second].id, best.top().first});
    best.pop();
  }
  std::reverse(out.begin(), out.end());
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace mcn::topk
