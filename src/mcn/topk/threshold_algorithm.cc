#include <algorithm>
#include <numeric>
#include <queue>
#include <unordered_set>

#include "mcn/common/macros.h"
#include "mcn/topk/topk.h"

namespace mcn::topk {
namespace {

/// Max-heap of the k best (smallest) scores seen so far.
struct BestK {
  explicit BestK(int k) : k(k) {}

  void Offer(uint32_t id, double score) {
    if (static_cast<int>(heap.size()) < k) {
      heap.push({score, id});
    } else if (score < heap.top().first) {
      heap.pop();
      heap.push({score, id});
    }
  }

  bool full() const { return static_cast<int>(heap.size()) >= k; }
  double worst() const { return heap.top().first; }

  std::vector<RankedItem> Extract() {
    std::vector<RankedItem> out;
    out.reserve(heap.size());
    while (!heap.empty()) {
      out.push_back(RankedItem{heap.top().second, heap.top().first});
      heap.pop();
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

  int k;
  std::priority_queue<std::pair<double, uint32_t>> heap;
};

/// Per-attribute ascending orderings of `data` (tuple indices).
std::vector<std::vector<uint32_t>> BuildSortedLists(
    std::span<const skyline::Tuple> data, int d) {
  std::vector<std::vector<uint32_t>> lists(d);
  for (int i = 0; i < d; ++i) {
    lists[i].resize(data.size());
    std::iota(lists[i].begin(), lists[i].end(), 0);
    std::stable_sort(lists[i].begin(), lists[i].end(),
                     [&, i](uint32_t a, uint32_t b) {
                       return data[a].values[i] < data[b].values[i];
                     });
  }
  return lists;
}

}  // namespace

std::vector<RankedItem> ThresholdAlgorithm(
    std::span<const skyline::Tuple> data, const algo::AggregateFn& f, int k,
    TaStats* stats) {
  MCN_CHECK(k >= 1);
  TaStats local;
  if (data.empty()) {
    if (stats != nullptr) *stats = local;
    return {};
  }
  int d = data[0].values.dim();
  auto lists = BuildSortedLists(data, d);

  BestK best(k);
  std::unordered_set<uint32_t> scored;
  size_t pos = 0;
  while (pos < data.size()) {
    ++local.rounds;
    graph::CostVector threshold(d);
    for (int i = 0; i < d; ++i) {
      uint32_t idx = lists[i][pos];
      ++local.sorted_accesses;
      threshold[i] = data[idx].values[i];
      if (scored.insert(idx).second) {
        ++local.random_accesses;  // fetch the remaining attributes
        best.Offer(data[idx].id, f(data[idx].values));
      }
    }
    if (best.full() && best.worst() <= f(threshold)) break;
    ++pos;
  }
  if (stats != nullptr) *stats = local;
  return best.Extract();
}

std::vector<RankedItem> BruteForceTopK(std::span<const skyline::Tuple> data,
                                       const algo::AggregateFn& f, int k) {
  BestK best(k);
  for (const skyline::Tuple& t : data) best.Offer(t.id, f(t.values));
  return best.Extract();
}

}  // namespace mcn::topk
