// Conventional top-k algorithms over materialized tuples (paper §II-B):
// Fagin's Threshold Algorithm (TA) with random accesses, and a
// no-random-access variant. Both assume an increasingly monotone aggregate
// and minimize it (the paper's convention: lower aggregate cost is better).
#ifndef MCN_TOPK_TOPK_H_
#define MCN_TOPK_TOPK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "mcn/algo/common.h"
#include "mcn/skyline/skyline.h"

namespace mcn::topk {

/// A scored result item.
struct RankedItem {
  uint32_t id = 0;
  double score = 0.0;
};

struct TaStats {
  uint64_t sorted_accesses = 0;
  uint64_t random_accesses = 0;
  uint64_t rounds = 0;
};

/// Threshold Algorithm: d sorted lists (ascending per attribute), round-
/// robin sorted access, random access to complete each encountered tuple,
/// stop when the k-th best score <= f(t_1,...,t_d) with t_i the key at the
/// current position of list i. Returns the k smallest-score items
/// (ascending; fewer if |data| < k).
std::vector<RankedItem> ThresholdAlgorithm(
    std::span<const skyline::Tuple> data, const algo::AggregateFn& f, int k,
    TaStats* stats = nullptr);

struct NraStats {
  uint64_t sorted_accesses = 0;
  uint64_t rounds = 0;
};

/// No-random-access top-k for minimization: only sorted accesses; an item is
/// reported once fully seen and no other (seen-incomplete or unseen) item's
/// frontier-based lower bound can beat the current k-th complete score.
/// (Classic NRA bounds both sides on a finite domain; with unbounded costs
/// only fully-seen items can be emitted — same safety logic as the paper's
/// incremental MCN top-k.)
std::vector<RankedItem> NoRandomAccessTopK(
    std::span<const skyline::Tuple> data, const algo::AggregateFn& f, int k,
    NraStats* stats = nullptr);

/// Reference: full scan + sort (tests, baselines).
std::vector<RankedItem> BruteForceTopK(std::span<const skyline::Tuple> data,
                                       const algo::AggregateFn& f, int k);

}  // namespace mcn::topk

#endif  // MCN_TOPK_TOPK_H_
