// Client/server end-to-end differential (DESIGN.md §9): an api::Server on
// localhost over a sharded exec::QueryService, driven by api::Client
// through the wire protocol. The transport-determinism contract — for
// every query kind, wire-executed results are byte-identical in result
// hash and logical fetch counts to in-process QueryService execution — is
// checked at shard counts K in {1, 2, 4}, and wire-streamed incremental
// sessions must replay a local IncrementalTopK iterator. Also covers
// protocol-level behavior a unit test can't: error transport for
// malformed specs, concurrent client connections, session cleanup on
// disconnect, and garbage-frame rejection on a live socket.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mcn/algo/incremental_topk.h"
#include "mcn/algo/result_hash.h"
#include "mcn/api/client.h"
#include "mcn/api/server.h"
#include "mcn/api/socket_io.h"
#include "mcn/api/wire.h"
#include "mcn/exec/query_service.h"
#include "mcn/gen/workload.h"
#include "test_util.h"

namespace mcn::api {
namespace {

gen::ExperimentConfig SmallConfig(uint64_t seed) {
  gen::ExperimentConfig config;
  config.nodes = 400;
  config.edges = 520;
  config.facilities = 60;
  config.clusters = 4;
  config.num_costs = 3;
  config.buffer_pct = 1.0;
  config.seed = seed;
  return config;
}

std::vector<QuerySpec> MixedSpecs(const gen::ShardedInstance& instance,
                                  uint64_t seed, int count) {
  Random rng(seed);
  const int d = instance.graph.num_costs();
  std::vector<QuerySpec> specs;
  specs.reserve(count);
  for (int i = 0; i < count; ++i) {
    QuerySpec spec;
    const graph::Location loc = instance.RandomQueryLocation(rng);
    switch (i % 3) {
      case 0:
        spec = SkylineSpec(loc);
        break;
      case 1:
        spec = TopKSpec(loc, 4, test::TestWeights(d, seed + i));
        break;
      case 2:
        spec = IncrementalSpec(loc, 3, test::TestWeights(d, seed + i));
        break;
    }
    spec.engine = i % 2 == 0 ? expand::EngineKind::kCea
                             : expand::EngineKind::kLsa;
    if (i % 5 == 4) {
      // Sprinkle in constraints so the filter crosses the wire too.
      if (spec.kind == QueryKind::kSkyline) {
        spec.preference.constraints.epsilon = 0.25;
      } else {
        spec.preference.constraints.cost_caps.assign(
            d, 1e9);  // permissive caps: exercises the code path
      }
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

struct Endpoint {
  std::unique_ptr<gen::ShardedInstance> instance;
  std::unique_ptr<exec::QueryService> service;
  std::unique_ptr<Server> server;

  static Endpoint Make(int num_shards, int workers, uint64_t seed = 7) {
    Endpoint ep;
    auto built = gen::BuildShardedInstance(SmallConfig(seed), num_shards);
    EXPECT_TRUE(built.ok());
    ep.instance = std::move(built).value();
    exec::ServiceOptions opts;
    opts.num_workers = workers;
    opts.queue_capacity = 64;
    opts.pool_frames_per_worker = ep.instance->pool_frames;
    auto service = exec::QueryService::Create(&ep.instance->storage,
                                              ep.instance->files, opts);
    EXPECT_TRUE(service.ok());
    ep.service = std::move(service).value();
    auto server = Server::Start(ep.service.get(), {});
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    ep.server = std::move(server).value();
    return ep;
  }
};

TEST(ApiServerE2eTest, WireExecutionMatchesInProcessAcrossShardCounts) {
  // The flat-anchored hashes: K=1 in-process execution.
  std::vector<uint64_t> anchor_hashes;
  for (int num_shards : {1, 2, 4}) {
    SCOPED_TRACE("K=" + std::to_string(num_shards));
    Endpoint ep = Endpoint::Make(num_shards, /*workers=*/3);
    const auto specs = MixedSpecs(*ep.instance, 123, 18);

    // In-process reference through the same service.
    std::vector<uint64_t> ref_hashes, ref_misses;
    for (const QuerySpec& spec : specs) {
      exec::QueryResult result = ep.service->Submit(spec).get();
      ASSERT_TRUE(result.status.ok()) << result.status.ToString();
      ref_hashes.push_back(result.result_hash);
      ref_misses.push_back(result.stats.buffer_misses);
    }

    // The same specs over the wire.
    auto client = Client::Connect("127.0.0.1", ep.server->port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    for (size_t i = 0; i < specs.size(); ++i) {
      auto response = (*client)->Execute(specs[i]);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      ASSERT_TRUE(response.value().status.ok())
          << response.value().status.ToString();
      EXPECT_EQ(response.value().result_hash, ref_hashes[i])
          << "query " << i << ": wire result diverged from in-process";
      EXPECT_EQ(response.value().buffer_misses, ref_misses[i])
          << "query " << i << ": wire logical I/O diverged";
      // The hash transported must also match the rows transported.
      const QueryResponse& r = response.value();
      EXPECT_EQ(r.result_hash, r.kind == QueryKind::kSkyline
                                   ? algo::HashResult(r.skyline)
                                   : algo::HashResult(r.topk));
    }
    if (anchor_hashes.empty()) {
      anchor_hashes = ref_hashes;
    } else {
      // K-invariance carries through the transport trivially once the
      // above holds; assert it anyway so a drift names the shard count.
      EXPECT_EQ(ref_hashes, anchor_hashes);
    }
  }
}

TEST(ApiServerE2eTest, WireSessionReplaysLocalIterator) {
  Endpoint ep = Endpoint::Make(/*num_shards=*/2, /*workers=*/2);
  const int d = ep.instance->graph.num_costs();
  Random rng(31);
  const graph::Location loc = ep.instance->RandomQueryLocation(rng);
  QuerySpec spec = IncrementalSpec(loc, 4, test::TestWeights(d, 17));

  // Local ground truth over the full component.
  std::vector<algo::TopKEntry> expected;
  {
    shard::ShardedNetworkReader reader(
        &ep.instance->storage, ep.instance->files,
        shard::SplitFramesAcrossShards(ep.instance->pool_frames,
                                       ep.instance->storage.num_shards()));
    auto engine = expand::MakeEngine(spec.engine, &reader, loc);
    ASSERT_TRUE(engine.ok());
    algo::IncrementalTopK local(engine.value().get(),
                                algo::WeightedSum(spec.preference.weights));
    for (;;) {
      auto next = local.NextBest();
      ASSERT_TRUE(next.ok());
      if (!next.value().has_value()) break;
      expected.push_back(*std::move(next).value());
    }
  }
  ASSERT_FALSE(expected.empty());

  auto client = Client::Connect("127.0.0.1", ep.server->port());
  ASSERT_TRUE(client.ok());
  auto session = (*client)->OpenSession(spec);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  std::vector<algo::TopKEntry> streamed;
  for (;;) {
    auto batch = (*client)->Next(*session, 3);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_TRUE(batch.value().status.ok());
    for (auto& row : batch.value().topk) streamed.push_back(std::move(row));
    if (batch.value().exhausted) break;
    ASSERT_LE(streamed.size(), expected.size() + 3) << "stream overran";
  }
  EXPECT_EQ(streamed.size(), expected.size());
  EXPECT_EQ(algo::HashResult(streamed), algo::HashResult(expected));

  EXPECT_TRUE((*client)->CloseSession(*session).ok());
  EXPECT_EQ((*client)->CloseSession(*session).code(),
            StatusCode::kNotFound);
}

TEST(ApiServerE2eTest, MalformedSpecsComeBackAsErrorsOverTheWire) {
  Endpoint ep = Endpoint::Make(/*num_shards=*/1, /*workers=*/2);
  auto client = Client::Connect("127.0.0.1", ep.server->port());
  ASSERT_TRUE(client.ok());
  Random rng(5);

  // Wrong-dimension weights: the server worker must answer with an
  // InvalidArgument response — not crash, not drop the connection.
  QuerySpec bad = TopKSpec(ep.instance->RandomQueryLocation(rng), 3, {1.0});
  auto response = (*client)->Execute(bad);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(response.value().num_rows(), 0u);

  // Unknown session ids are NotFound, also over the wire.
  auto next = (*client)->Next(987654, 3);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value().status.code(), StatusCode::kNotFound);

  // Session ownership: a second connection can neither pull from nor
  // close a stream it did not open (ids are sequential and guessable).
  const int d = ep.instance->graph.num_costs();
  auto session = (*client)->OpenSession(IncrementalSpec(
      ep.instance->RandomQueryLocation(rng), 2, test::TestWeights(d, 8)));
  ASSERT_TRUE(session.ok());
  auto intruder = Client::Connect("127.0.0.1", ep.server->port());
  ASSERT_TRUE(intruder.ok());
  auto stolen = (*intruder)->Next(*session, 5);
  ASSERT_TRUE(stolen.ok());
  EXPECT_EQ(stolen.value().status.code(), StatusCode::kNotFound);
  EXPECT_EQ((*intruder)->CloseSession(*session).code(),
            StatusCode::kNotFound);
  // The owner still reads its stream undisturbed from the start.
  auto owned = (*client)->Next(*session, 1);
  ASSERT_TRUE(owned.ok());
  EXPECT_TRUE(owned.value().status.ok());
  EXPECT_EQ(owned.value().topk.size(), 1u);
  EXPECT_TRUE((*client)->CloseSession(*session).ok());

  // The connection is still healthy afterwards.
  auto good =
      (*client)->Execute(SkylineSpec(ep.instance->RandomQueryLocation(rng)));
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good.value().status.ok());
}

TEST(ApiServerE2eTest, ConcurrentClientsGetConsistentAnswers) {
  Endpoint ep = Endpoint::Make(/*num_shards=*/2, /*workers=*/4);
  const auto specs = MixedSpecs(*ep.instance, 99, 12);
  std::vector<uint64_t> ref;
  for (const QuerySpec& spec : specs) {
    exec::QueryResult result = ep.service->Submit(spec).get();
    ASSERT_TRUE(result.status.ok());
    ref.push_back(result.result_hash);
  }
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = Client::Connect("127.0.0.1", ep.server->port());
      if (!client.ok()) {
        failures[c] = 1;
        return;
      }
      for (size_t i = 0; i < specs.size(); ++i) {
        auto response = (*client)->Execute(specs[i]);
        if (!response.ok() || !response.value().status.ok() ||
            response.value().result_hash != ref[i]) {
          failures[c] = 1;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }
  EXPECT_GE(ep.server->connections_accepted(), 4u);
}

TEST(ApiServerE2eTest, SessionsAreClosedOnDisconnect) {
  Endpoint ep = Endpoint::Make(/*num_shards=*/1, /*workers=*/2);
  const int d = ep.instance->graph.num_costs();
  Random rng(3);
  {
    auto client = Client::Connect("127.0.0.1", ep.server->port());
    ASSERT_TRUE(client.ok());
    auto session = (*client)->OpenSession(IncrementalSpec(
        ep.instance->RandomQueryLocation(rng), 2, test::TestWeights(d, 1)));
    ASSERT_TRUE(session.ok());
    EXPECT_EQ(ep.service->num_open_sessions(), 1u);
  }  // client destroyed: disconnect
  // The server's connection thread notices EOF and closes the session.
  for (int spin = 0; spin < 200; ++spin) {
    if (ep.service->num_open_sessions() == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(ep.service->num_open_sessions(), 0u);
}

/// Raw loopback connection for protocol-violation probes.
int RawConnect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  return fd;
}

TEST(ApiServerE2eTest, GarbageFramesAreRejectedWithoutTakingTheServerDown) {
  Endpoint ep = Endpoint::Make(/*num_shards=*/1, /*workers=*/2);

  {
    // Version-mismatch frame: the server must answer with an error
    // response, then hang up this connection.
    WireRequest request;
    request.type = MsgType::kCloseSession;
    request.session_id = 1;
    std::string frame = EncodeRequestFrame(request);
    frame[4] = static_cast<char>(kWireVersion + 7);  // payload[0] = version
    const int fd = RawConnect(ep.server->port());
    ASSERT_TRUE(SendFrame(fd, frame).ok());
    auto payload = RecvFramePayload(fd);
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    auto response = DecodeResponsePayload(payload.value());
    ASSERT_TRUE(response.ok());
    EXPECT_FALSE(response.value().response.status.ok());
    EXPECT_NE(
        response.value().response.status.message().find("version"),
        std::string::npos);
    // The stream is dropped after a framing error: next read is EOF.
    auto eof = RecvFramePayload(fd);
    EXPECT_FALSE(eof.ok());
    ::close(fd);
  }
  {
    // Pure garbage bytes framed with a plausible length.
    const int fd = RawConnect(ep.server->port());
    std::string garbage("\x08\x00\x00\x00metadata", 12);
    ASSERT_TRUE(SendFrame(fd, garbage).ok());
    auto payload = RecvFramePayload(fd);
    ASSERT_TRUE(payload.ok());
    auto response = DecodeResponsePayload(payload.value());
    ASSERT_TRUE(response.ok());
    EXPECT_FALSE(response.value().response.status.ok());
    ::close(fd);
  }

  // A live server outlives protocol violators and still serves new
  // connections.
  auto client = Client::Connect("127.0.0.1", ep.server->port());
  ASSERT_TRUE(client.ok());
  Random rng(9);
  auto good =
      (*client)->Execute(SkylineSpec(ep.instance->RandomQueryLocation(rng)));
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good.value().status.ok());
}

}  // namespace
}  // namespace mcn::api
