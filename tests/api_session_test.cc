// Unified-API service tests (DESIGN.md §9): QuerySpec submission parity
// with the legacy QueryRequest path, Status-based rejection of malformed
// specs (no worker crashes), preference-constraint semantics, and the
// streaming incremental session lifecycle — local-iterator parity, bounded
// session table with LRU + idle eviction, close/unknown-id behavior.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "mcn/algo/constraints.h"
#include "mcn/algo/incremental_topk.h"
#include "mcn/algo/result_hash.h"
#include "mcn/api/query_spec.h"
#include "mcn/common/random.h"
#include "mcn/exec/query_service.h"
#include "mcn/expand/engines.h"
#include "mcn/gen/workload.h"
#include "test_util.h"

namespace mcn::exec {
namespace {

struct ApiFixture {
  std::unique_ptr<gen::Instance> instance;
  size_t frames = 0;

  explicit ApiFixture(uint64_t seed = 11) {
    test::SmallConfig config;
    config.seed = seed;
    auto built = test::MakeSmallInstance(config);
    EXPECT_TRUE(built.ok());
    instance = std::move(built).value();
    frames = instance->pool->capacity();
  }

  ServiceOptions Options(int workers) const {
    ServiceOptions opts;
    opts.num_workers = workers;
    opts.queue_capacity = 64;
    opts.pool_frames_per_worker = frames;
    return opts;
  }

  int d() const { return instance->graph.num_costs(); }

  graph::Location Location(uint64_t salt) const {
    Random rng(1000 + salt);
    return instance->RandomQueryLocation(rng);
  }

  /// The local ground truth a session must replay: a fresh
  /// IncrementalTopK over its own engine + pool of the same capacity.
  std::vector<algo::TopKEntry> LocalStream(const api::QuerySpec& spec,
                                           int limit) {
    storage::BufferPool pool(&instance->disk, frames);
    net::NetworkReader reader(instance->files, &pool);
    auto engine = expand::MakeEngine(spec.engine, &reader, spec.location);
    EXPECT_TRUE(engine.ok());
    algo::IncrementalTopK query(
        engine.value().get(),
        algo::WeightedSum(spec.preference.weights));
    std::vector<algo::TopKEntry> rows;
    while (static_cast<int>(rows.size()) < limit) {
      auto next = query.NextBest();
      EXPECT_TRUE(next.ok());
      if (!next.value().has_value()) break;
      if (!algo::PassesCaps(spec.preference.constraints, *next.value())) {
        continue;
      }
      rows.push_back(*std::move(next).value());
    }
    return rows;
  }
};

TEST(ApiSpecTest, SpecAndLegacyRequestAreHashIdentical) {
  ApiFixture fx;
  auto service = QueryService::Create(&fx.instance->disk,
                                      fx.instance->files, fx.Options(2));
  ASSERT_TRUE(service.ok());
  Random rng(42);
  for (int i = 0; i < 9; ++i) {
    QueryRequest request;
    request.location = fx.instance->RandomQueryLocation(rng);
    request.kind = static_cast<QueryKind>(i % 3);
    if (request.kind != QueryKind::kSkyline) {
      request.k = 3;
      request.weights = test::TestWeights(fx.d(), 77 + i);
    }
    QueryResult via_request = (*service)->Submit(request).get();
    QueryResult via_spec = (*service)->Submit(request.ToSpec()).get();
    ASSERT_TRUE(via_request.status.ok());
    ASSERT_TRUE(via_spec.status.ok());
    EXPECT_EQ(via_request.result_hash, via_spec.result_hash);
    EXPECT_EQ(via_request.stats.buffer_misses,
              via_spec.stats.buffer_misses);
  }
  (*service)->Shutdown();
}

TEST(ApiSpecTest, MalformedSpecsRejectedWithStatusNotCrash) {
  ApiFixture fx;
  auto service = QueryService::Create(&fx.instance->disk,
                                      fx.instance->files, fx.Options(2));
  ASSERT_TRUE(service.ok());

  auto expect_invalid = [&](api::QuerySpec spec) {
    QueryResult result = (*service)->Submit(std::move(spec)).get();
    EXPECT_FALSE(result.status.ok());
    EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument)
        << result.status.ToString();
  };

  // Wrong-dimension weights (the old DCHECK path).
  expect_invalid(api::TopKSpec(fx.Location(1), 3, {1.0}));
  // Negative weight: previously an MCN_CHECK crash inside WeightedSum.
  expect_invalid(
      api::TopKSpec(fx.Location(2), 3,
                    std::vector<double>(fx.d(), -1.0)));
  // k <= 0.
  expect_invalid(api::TopKSpec(fx.Location(3), 0,
                               test::TestWeights(fx.d(), 5)));
  // Skyline with weights.
  {
    api::QuerySpec spec = api::SkylineSpec(fx.Location(4));
    spec.preference.weights = test::TestWeights(fx.d(), 6);
    expect_invalid(std::move(spec));
  }
  // Wrong-size cost caps.
  {
    api::QuerySpec spec = api::SkylineSpec(fx.Location(5));
    spec.preference.constraints.cost_caps = {1.0};
    expect_invalid(std::move(spec));
  }
  // Epsilon on a non-skyline kind.
  {
    api::QuerySpec spec =
        api::TopKSpec(fx.Location(6), 3, test::TestWeights(fx.d(), 7));
    spec.preference.constraints.epsilon = 0.1;
    expect_invalid(std::move(spec));
  }
  // Unset location.
  expect_invalid(api::QuerySpec{});

  // The workers that executed the failures still serve good queries.
  QueryResult good = (*service)->Submit(api::SkylineSpec(fx.Location(8))).get();
  EXPECT_TRUE(good.status.ok());
  ServiceStats stats = (*service)->Snapshot();
  EXPECT_EQ(stats.failed, 7u);
  EXPECT_EQ(stats.completed, 1u);
  (*service)->Shutdown();
}

TEST(ApiSpecTest, ConstraintsFilterResultsAndUnconstrainedIsNoOp) {
  ApiFixture fx;
  auto service = QueryService::Create(&fx.instance->disk,
                                      fx.instance->files, fx.Options(2));
  ASSERT_TRUE(service.ok());
  const graph::Location loc = fx.Location(9);

  QueryResult base = (*service)->Submit(api::SkylineSpec(loc)).get();
  ASSERT_TRUE(base.status.ok());
  ASSERT_FALSE(base.skyline.empty());

  // An explicitly-default constraint block is byte-identical to none.
  api::QuerySpec defaulted = api::SkylineSpec(loc);
  defaulted.preference.constraints = algo::PreferenceConstraints{};
  QueryResult same = (*service)->Submit(defaulted).get();
  EXPECT_EQ(same.result_hash, base.result_hash);
  EXPECT_EQ(same.stats.buffer_misses, base.stats.buffer_misses);

  // Cap every dimension at the base result's max: still a no-op filter
  // on rows, then tighten dimension 0 below the known minimum — every
  // surviving row must satisfy the cap, and some row must go.
  graph::CostVector maxima(fx.d(), 0.0);
  double min0 = expand::kInfCost;
  for (const auto& e : base.skyline) {
    for (int j = 0; j < fx.d(); ++j) {
      if ((e.known_mask >> j) & 1u) {
        maxima[j] = std::max(maxima[j], e.costs[j]);
      }
    }
    if (e.known_mask & 1u) min0 = std::min(min0, e.costs[0]);
  }
  api::QuerySpec capped = api::SkylineSpec(loc);
  for (int j = 0; j < fx.d(); ++j) {
    capped.preference.constraints.cost_caps.push_back(maxima[j]);
  }
  QueryResult all_pass = (*service)->Submit(capped).get();
  ASSERT_TRUE(all_pass.status.ok());
  EXPECT_EQ(all_pass.result_hash, base.result_hash);

  capped.preference.constraints.cost_caps[0] = min0 * 0.5;
  QueryResult filtered = (*service)->Submit(capped).get();
  ASSERT_TRUE(filtered.status.ok());
  EXPECT_LT(filtered.skyline.size(), base.skyline.size());
  for (const auto& e : filtered.skyline) {
    if (e.known_mask & 1u) EXPECT_LE(e.costs[0], min0 * 0.5);
  }

  // Epsilon thinning: a large epsilon collapses the skyline to (at
  // least) far fewer rows; epsilon 0 stays exact.
  api::QuerySpec thinned = api::SkylineSpec(loc);
  thinned.preference.constraints.epsilon = 1e9;
  QueryResult thin = (*service)->Submit(thinned).get();
  ASSERT_TRUE(thin.status.ok());
  EXPECT_LE(thin.skyline.size(), base.skyline.size());
  EXPECT_GE(thin.skyline.size(), 1u);
  (*service)->Shutdown();
}

TEST(ApiSessionTest, SessionReplaysLocalIncrementalIterator) {
  ApiFixture fx;
  auto service = QueryService::Create(&fx.instance->disk,
                                      fx.instance->files, fx.Options(3));
  ASSERT_TRUE(service.ok());

  api::QuerySpec spec = api::IncrementalSpec(
      fx.Location(21), 4, test::TestWeights(fx.d(), 13));
  const std::vector<algo::TopKEntry> expected = fx.LocalStream(spec, 1 << 20);

  auto session = (*service)->OpenSession(spec);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  // Stream the whole component in uneven batches; the concatenation must
  // replay the local iterator row for row (ids, scores, cost vectors —
  // compared via the shared FNV hash), and logical I/O must match a
  // fresh local pool of the same capacity.
  std::vector<algo::TopKEntry> streamed;
  uint64_t streamed_misses = 0;
  bool exhausted = false;
  const int batch_sizes[] = {1, 3, 2, 100};
  for (int n : batch_sizes) {
    QueryResult batch = (*service)->SessionNext(*session, n).get();
    ASSERT_TRUE(batch.status.ok()) << batch.status.ToString();
    EXPECT_EQ(batch.result_hash, algo::HashResult(batch.topk));
    streamed_misses += batch.stats.buffer_misses;
    for (auto& row : batch.topk) streamed.push_back(std::move(row));
    if (static_cast<int>(batch.topk.size()) < n) {
      EXPECT_TRUE(batch.exhausted);
      exhausted = true;
      break;
    }
  }
  EXPECT_TRUE(exhausted);
  EXPECT_EQ(algo::HashResult(streamed), algo::HashResult(expected));

  storage::BufferPool pool(&fx.instance->disk, fx.frames);
  net::NetworkReader reader(fx.instance->files, &pool);
  auto engine = expand::MakeEngine(spec.engine, &reader, spec.location);
  ASSERT_TRUE(engine.ok());
  algo::IncrementalTopK local(engine.value().get(),
                              algo::WeightedSum(spec.preference.weights));
  while (true) {
    auto next = local.NextBest();
    ASSERT_TRUE(next.ok());
    if (!next.value().has_value()) break;
  }
  EXPECT_EQ(streamed_misses, pool.stats().misses);

  // Past exhaustion: empty OK batches forever, never an error.
  QueryResult after = (*service)->SessionNext(*session, 5).get();
  EXPECT_TRUE(after.status.ok());
  EXPECT_TRUE(after.topk.empty());
  EXPECT_TRUE(after.exhausted);

  EXPECT_EQ((*service)->CloseSession(*session), Status::OK());
  EXPECT_EQ((*service)->num_open_sessions(), 0u);
  QueryResult closed = (*service)->SessionNext(*session, 1).get();
  EXPECT_EQ(closed.status.code(), StatusCode::kNotFound);
  (*service)->Shutdown();
}

TEST(ApiSessionTest, ConstrainedSessionStillFillsBatches) {
  ApiFixture fx;
  auto service = QueryService::Create(&fx.instance->disk,
                                      fx.instance->files, fx.Options(2));
  ASSERT_TRUE(service.ok());

  api::QuerySpec spec = api::IncrementalSpec(
      fx.Location(33), 4, test::TestWeights(fx.d(), 29));
  // Cap dimension 0 at the stream's median so a real fraction of rows is
  // filtered out.
  std::vector<algo::TopKEntry> unfiltered = fx.LocalStream(spec, 1 << 20);
  ASSERT_GT(unfiltered.size(), 4u);
  std::vector<double> dim0;
  for (const auto& row : unfiltered) dim0.push_back(row.costs[0]);
  std::sort(dim0.begin(), dim0.end());
  spec.preference.constraints.cost_caps.assign(fx.d(), expand::kInfCost);
  spec.preference.constraints.cost_caps[0] = dim0[dim0.size() / 2];

  const std::vector<algo::TopKEntry> expected = fx.LocalStream(spec, 1 << 20);
  ASSERT_LT(expected.size(), unfiltered.size());

  auto session = (*service)->OpenSession(spec);
  ASSERT_TRUE(session.ok());
  std::vector<algo::TopKEntry> streamed;
  for (;;) {
    QueryResult batch = (*service)->SessionNext(*session, 2).get();
    ASSERT_TRUE(batch.status.ok());
    // A constrained batch still fills to n until exhaustion.
    for (auto& row : batch.topk) {
      EXPECT_LE(row.costs[0], spec.preference.constraints.cost_caps[0]);
      streamed.push_back(std::move(row));
    }
    if (batch.exhausted) break;
  }
  EXPECT_EQ(algo::HashResult(streamed), algo::HashResult(expected));
  (*service)->Shutdown();
}

TEST(ApiSessionTest, SessionTableBoundsAndLruEviction) {
  ApiFixture fx;
  ServiceOptions opts = fx.Options(2);
  opts.max_sessions = 2;
  auto service = QueryService::Create(&fx.instance->disk,
                                      fx.instance->files, opts);
  ASSERT_TRUE(service.ok());
  auto spec = [&](uint64_t salt) {
    return api::IncrementalSpec(fx.Location(salt), 2,
                                test::TestWeights(fx.d(), salt));
  };

  auto s1 = (*service)->OpenSession(spec(1));
  auto s2 = (*service)->OpenSession(spec(2));
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_EQ((*service)->num_open_sessions(), 2u);

  // Touch s1 so s2 becomes the LRU victim.
  ASSERT_TRUE((*service)->SessionNext(*s1, 1).get().status.ok());
  auto s3 = (*service)->OpenSession(spec(3));
  ASSERT_TRUE(s3.ok());
  EXPECT_EQ((*service)->num_open_sessions(), 2u);
  EXPECT_EQ((*service)->SessionNext(*s2, 1).get().status.code(),
            StatusCode::kNotFound);
  EXPECT_TRUE((*service)->SessionNext(*s1, 1).get().status.ok());

  // Wrong kind is rejected at open.
  auto bad = (*service)->OpenSession(api::SkylineSpec(fx.Location(4)));
  EXPECT_FALSE(bad.ok());
  // Malformed spec is rejected at open (not at first batch).
  auto malformed =
      (*service)->OpenSession(api::IncrementalSpec(fx.Location(5), 2, {}));
  EXPECT_FALSE(malformed.ok());
  (*service)->Shutdown();
}

TEST(ApiSessionTest, IdleSessionsAreEvictedLazily) {
  ApiFixture fx;
  ServiceOptions opts = fx.Options(2);
  opts.max_sessions = 2;
  opts.session_idle_seconds = 0.05;
  auto service = QueryService::Create(&fx.instance->disk,
                                      fx.instance->files, opts);
  ASSERT_TRUE(service.ok());
  auto spec = [&](uint64_t salt) {
    return api::IncrementalSpec(fx.Location(salt), 2,
                                test::TestWeights(fx.d(), salt));
  };
  auto s1 = (*service)->OpenSession(spec(1));
  auto s2 = (*service)->OpenSession(spec(2));
  ASSERT_TRUE(s1.ok() && s2.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  // The next open finds both expired: the table shrinks to just s3.
  auto s3 = (*service)->OpenSession(spec(3));
  ASSERT_TRUE(s3.ok());
  EXPECT_EQ((*service)->num_open_sessions(), 1u);
  EXPECT_EQ((*service)->SessionNext(*s1, 1).get().status.code(),
            StatusCode::kNotFound);
  (*service)->Shutdown();
}

TEST(ApiSessionTest, SessionsSurviveAcrossSubmitTraffic) {
  // A session's engine stays pinned and warm while one-shot queries churn
  // through the same workers: interleaved traffic must not perturb the
  // stream (its reader is private) nor the one-shot determinism.
  ApiFixture fx;
  auto service = QueryService::Create(&fx.instance->disk,
                                      fx.instance->files, fx.Options(2));
  ASSERT_TRUE(service.ok());

  api::QuerySpec spec = api::IncrementalSpec(
      fx.Location(55), 4, test::TestWeights(fx.d(), 31));
  const std::vector<algo::TopKEntry> expected = fx.LocalStream(spec, 7);

  auto session = (*service)->OpenSession(spec);
  ASSERT_TRUE(session.ok());
  std::vector<algo::TopKEntry> streamed;
  for (int round = 0; round < 7; ++round) {
    // Interleave unrelated one-shot queries.
    QueryResult noise =
        (*service)->Submit(api::SkylineSpec(fx.Location(60 + round))).get();
    ASSERT_TRUE(noise.status.ok());
    QueryResult batch = (*service)->SessionNext(*session, 1).get();
    ASSERT_TRUE(batch.status.ok());
    if (batch.topk.empty()) break;
    streamed.push_back(batch.topk[0]);
    if (static_cast<int>(streamed.size()) == 7) break;
  }
  const size_t n = std::min(streamed.size(), expected.size());
  std::vector<algo::TopKEntry> exp_prefix(expected.begin(),
                                          expected.begin() + n);
  std::vector<algo::TopKEntry> got_prefix(streamed.begin(),
                                          streamed.begin() + n);
  EXPECT_EQ(algo::HashResult(got_prefix), algo::HashResult(exp_prefix));
  EXPECT_GT(n, 0u);
  (*service)->Shutdown();
}

}  // namespace
}  // namespace mcn::exec
