#include <gtest/gtest.h>

#include "mcn/expand/astar.h"
#include "mcn/gen/cost_generator.h"
#include "mcn/gen/road_network_generator.h"
#include "test_util.h"

namespace mcn::expand {
namespace {

graph::MultiCostGraph RoadGraph(uint32_t nodes, uint64_t seed) {
  gen::RoadNetworkOptions road;
  road.target_nodes = nodes;
  road.target_edges = static_cast<uint32_t>(nodes * 1.27);
  road.seed = seed;
  auto topo = gen::GenerateRoadNetwork(road).value();
  gen::CostGenOptions costs;
  costs.num_costs = 2;
  costs.distribution = gen::CostDistribution::kIndependent;
  costs.seed = seed + 1;
  return gen::BuildMultiCostGraph(topo, costs).value();
}

TEST(AStarTest, AdmissibleFactorLowerBoundsEveryEdge) {
  graph::MultiCostGraph g = RoadGraph(500, 3);
  for (int ci = 0; ci < 2; ++ci) {
    double factor = AdmissibleCostPerDistance(g, ci);
    EXPECT_GT(factor, 0.0);
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      const graph::EdgeRecord& er = g.edge(e);
      EXPECT_LE(factor * g.EuclideanDistance(er.u, er.v),
                er.w[ci] + 1e-12);
    }
  }
}

TEST(AStarTest, MatchesDijkstraCosts) {
  graph::MultiCostGraph g = RoadGraph(800, 4);
  Random rng(9);
  for (int ci = 0; ci < 2; ++ci) {
    double factor = AdmissibleCostPerDistance(g, ci);
    for (int iter = 0; iter < 10; ++iter) {
      graph::NodeId s = static_cast<graph::NodeId>(
          rng.Uniform(g.num_nodes()));
      graph::NodeId t = static_cast<graph::NodeId>(
          rng.Uniform(g.num_nodes()));
      auto dij = ShortestPath(g, ci, s, t);
      auto ast = AStarShortestPath(g, ci, s, t, factor);
      ASSERT_EQ(dij.ok(), ast.ok());
      if (dij.ok()) {
        EXPECT_NEAR(dij->cost, ast->cost, 1e-9);
        EXPECT_EQ(ast->nodes.front(), s);
        EXPECT_EQ(ast->nodes.back(), t);
      }
    }
  }
}

TEST(AStarTest, ExploresFewerNodesThanDijkstra) {
  graph::MultiCostGraph g = RoadGraph(3000, 5);
  double factor = AdmissibleCostPerDistance(g, 0);
  // Spatially close endpoints (generator sorts node ids spatially).
  graph::NodeId s = 100, t = 160;
  AStarStats with;
  ASSERT_TRUE(AStarShortestPath(g, 0, s, t, factor, &with).ok());
  AStarStats without;
  ASSERT_TRUE(AStarShortestPath(g, 0, s, t, 0.0, &without).ok());
  EXPECT_LT(with.nodes_settled, without.nodes_settled);
}

TEST(AStarTest, ZeroFactorEqualsDijkstra) {
  graph::MultiCostGraph g = test::TinyGraph();
  auto ast = AStarShortestPath(g, 0, 0, 8, 0.0).value();
  auto dij = ShortestPath(g, 0, 0, 8).value();
  EXPECT_DOUBLE_EQ(ast.cost, dij.cost);
}

TEST(AStarTest, ErrorsMatchDijkstra) {
  graph::MultiCostGraph g(1);
  g.AddNode(0, 0);
  g.AddNode(1, 1);
  g.Finalize();
  EXPECT_EQ(AStarShortestPath(g, 0, 0, 1, 0.0).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(AStarShortestPath(g, 0, 0, 9, 0.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(AStarShortestPath(g, 0, 0, 1, -1.0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AStarTest, DegenerateFactorCases) {
  // Zero-cost edge forces factor 0 (no positive admissible bound).
  graph::MultiCostGraph g(1);
  graph::NodeId a = g.AddNode(0, 0);
  graph::NodeId b = g.AddNode(1, 0);
  ASSERT_TRUE(g.AddEdge(a, b, graph::CostVector{0.0}).ok());
  g.Finalize();
  EXPECT_EQ(AdmissibleCostPerDistance(g, 0), 0.0);

  // No edges at all.
  graph::MultiCostGraph empty(1);
  empty.AddNode(0, 0);
  empty.Finalize();
  EXPECT_EQ(AdmissibleCostPerDistance(empty, 0), 0.0);
}

}  // namespace
}  // namespace mcn::expand
