#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "mcn/common/random.h"
#include "mcn/index/bplus_tree.h"

namespace mcn::index {
namespace {

using Entry = BPlusTree::Entry;

class BPlusTreeTest : public ::testing::Test {
 protected:
  BPlusTree Build(const std::vector<Entry>& entries) {
    storage::FileId file = disk_.CreateFile("tree");
    auto tree = BPlusTree::BulkLoad(&disk_, file, entries);
    EXPECT_TRUE(tree.ok()) << tree.status().ToString();
    return tree.value();
  }

  storage::DiskManager disk_;
};

TEST_F(BPlusTreeTest, EmptyTree) {
  BPlusTree tree = Build({});
  storage::BufferPool pool(&disk_, 16);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Lookup(pool, 0).value().has_value());
  EXPECT_FALSE(tree.Lookup(pool, 12345).value().has_value());
}

TEST_F(BPlusTreeTest, SingleEntry) {
  BPlusTree tree = Build({{42, 4242}});
  storage::BufferPool pool(&disk_, 16);
  EXPECT_EQ(tree.Lookup(pool, 42).value().value(), 4242u);
  EXPECT_FALSE(tree.Lookup(pool, 41).value().has_value());
  EXPECT_FALSE(tree.Lookup(pool, 43).value().has_value());
}

TEST_F(BPlusTreeTest, RejectsUnsortedKeys) {
  storage::FileId file = disk_.CreateFile("bad");
  std::vector<Entry> entries{{2, 0}, {1, 0}};
  EXPECT_FALSE(BPlusTree::BulkLoad(&disk_, file, entries).ok());
  std::vector<Entry> dup{{1, 0}, {1, 1}};
  EXPECT_FALSE(BPlusTree::BulkLoad(&disk_, file, dup).ok());
}

TEST_F(BPlusTreeTest, MultiLevelLookupAllKeys) {
  // Force >= 3 levels: 255 entries/leaf, so 100k entries -> ~400 leaves.
  std::vector<Entry> entries;
  for (uint64_t k = 0; k < 100000; ++k) entries.push_back({k * 3, k});
  BPlusTree tree = Build(entries);
  EXPECT_GE(tree.height(), 3u);
  storage::BufferPool pool(&disk_, 1024);
  Random rng(1);
  for (int i = 0; i < 2000; ++i) {
    uint64_t k = rng.Uniform(100000);
    auto v = tree.Lookup(pool, k * 3).value();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, k);
    // Keys between stored keys must miss.
    EXPECT_FALSE(tree.Lookup(pool, k * 3 + 1).value().has_value());
  }
}

TEST_F(BPlusTreeTest, MatchesStdMapOnRandomKeys) {
  Random rng(7);
  std::map<uint64_t, uint64_t> model;
  while (model.size() < 5000) {
    model[rng.Next() % 1000000] = rng.Next();
  }
  std::vector<Entry> entries(model.begin(), model.end());
  BPlusTree tree = Build(entries);
  storage::BufferPool pool(&disk_, 256);
  for (int i = 0; i < 3000; ++i) {
    uint64_t probe = rng.Next() % 1000000;
    auto got = tree.Lookup(pool, probe).value();
    auto it = model.find(probe);
    if (it == model.end()) {
      EXPECT_FALSE(got.has_value()) << probe;
    } else {
      ASSERT_TRUE(got.has_value()) << probe;
      EXPECT_EQ(*got, it->second);
    }
  }
}

TEST_F(BPlusTreeTest, ScanRangeInOrder) {
  std::vector<Entry> entries;
  for (uint64_t k = 0; k < 3000; ++k) entries.push_back({k * 2, k});
  BPlusTree tree = Build(entries);
  storage::BufferPool pool(&disk_, 64);

  std::vector<uint64_t> keys;
  ASSERT_TRUE(tree.ScanRange(pool, 100, 200,
                             [&](uint64_t k, uint64_t v) {
                               EXPECT_EQ(v, k / 2);
                               keys.push_back(k);
                               return true;
                             })
                  .ok());
  ASSERT_EQ(keys.size(), 51u);  // 100,102,...,200
  EXPECT_EQ(keys.front(), 100u);
  EXPECT_EQ(keys.back(), 200u);
  for (size_t i = 1; i < keys.size(); ++i) EXPECT_LT(keys[i - 1], keys[i]);
}

TEST_F(BPlusTreeTest, ScanRangeEarlyStop) {
  std::vector<Entry> entries;
  for (uint64_t k = 0; k < 1000; ++k) entries.push_back({k, k});
  BPlusTree tree = Build(entries);
  storage::BufferPool pool(&disk_, 64);
  int count = 0;
  ASSERT_TRUE(tree.ScanRange(pool, 0, 999,
                             [&](uint64_t, uint64_t) {
                               return ++count < 10;
                             })
                  .ok());
  EXPECT_EQ(count, 10);
}

TEST_F(BPlusTreeTest, ScanCrossesLeafBoundaries) {
  std::vector<Entry> entries;
  for (uint64_t k = 0; k < 600; ++k) entries.push_back({k, k * 7});
  BPlusTree tree = Build(entries);  // 600 > 255: at least 3 leaves
  storage::BufferPool pool(&disk_, 64);
  uint64_t expected = 0;
  ASSERT_TRUE(tree.ScanRange(pool, 0, 599,
                             [&](uint64_t k, uint64_t v) {
                               EXPECT_EQ(k, expected);
                               EXPECT_EQ(v, k * 7);
                               ++expected;
                               return true;
                             })
                  .ok());
  EXPECT_EQ(expected, 600u);
}

TEST_F(BPlusTreeTest, LookupsChargeBufferPool) {
  std::vector<Entry> entries;
  for (uint64_t k = 0; k < 100000; ++k) entries.push_back({k, k});
  BPlusTree tree = Build(entries);
  storage::BufferPool pool(&disk_, 0);  // no caching
  disk_.ResetStats();
  tree.Lookup(pool, 50).value();
  // height page fetches, all misses.
  EXPECT_EQ(pool.stats().misses, tree.height());
  EXPECT_EQ(disk_.stats().page_reads, tree.height());
}

}  // namespace
}  // namespace mcn::index
