#include <gtest/gtest.h>

#include <deque>
#include <unordered_map>
#include <vector>

#include "mcn/common/random.h"
#include "mcn/storage/buffer_pool.h"

namespace mcn::storage {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = disk_.CreateFile("data");
    std::vector<std::byte> buf(kPageSize);
    for (int p = 0; p < 32; ++p) {
      PageNo page = disk_.AllocatePage(file_).value();
      buf[0] = static_cast<std::byte>(p);
      ASSERT_TRUE(disk_.WritePage({file_, page}, buf.data()).ok());
    }
    disk_.ResetStats();
  }

  PageId P(PageNo p) const { return {file_, p}; }

  DiskManager disk_;
  FileId file_;
};

TEST_F(BufferPoolTest, MissThenHit) {
  BufferPool pool(&disk_, 4);
  {
    auto g = pool.Fetch(P(0)).value();
    EXPECT_EQ(g.data()[0], std::byte{0});
  }
  EXPECT_EQ(pool.stats().misses, 1u);
  {
    auto g = pool.Fetch(P(0)).value();
    EXPECT_EQ(g.data()[0], std::byte{0});
  }
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(disk_.stats().page_reads, 1u);
}

TEST_F(BufferPoolTest, EvictsLeastRecentlyUsed) {
  BufferPool pool(&disk_, 2);
  pool.Fetch(P(0)).value();
  pool.Fetch(P(1)).value();
  pool.Fetch(P(0)).value();  // 0 now MRU
  pool.Fetch(P(2)).value();  // evicts 1
  EXPECT_EQ(pool.stats().evictions, 1u);
  pool.ResetStats();
  pool.Fetch(P(0)).value();
  EXPECT_EQ(pool.stats().hits, 1u);  // 0 still resident
  pool.Fetch(P(1)).value();
  EXPECT_EQ(pool.stats().misses, 1u);  // 1 was the victim
}

TEST_F(BufferPoolTest, PinnedPagesSurviveEviction) {
  BufferPool pool(&disk_, 1);
  auto pinned = pool.Fetch(P(0)).value();
  pool.Fetch(P(1)).value();
  pool.Fetch(P(2)).value();
  // P(0) is pinned: still resident despite capacity 1.
  pool.ResetStats();
  auto again = pool.Fetch(P(0)).value();
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(again.data()[0], std::byte{0});
}

TEST_F(BufferPoolTest, ZeroCapacityAlwaysMisses) {
  BufferPool pool(&disk_, 0);
  for (int round = 0; round < 3; ++round) {
    auto g = pool.Fetch(P(5)).value();
    EXPECT_EQ(g.data()[0], std::byte{5});
  }
  EXPECT_EQ(pool.stats().misses, 3u);
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(pool.resident_frames(), 0u);
}

TEST_F(BufferPoolTest, MultiplePinsOnSamePage) {
  BufferPool pool(&disk_, 1);
  auto g1 = pool.Fetch(P(3)).value();
  auto g2 = pool.Fetch(P(3)).value();
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
  g1.Release();
  // Still pinned via g2: fetching another page cannot evict it.
  pool.Fetch(P(4)).value();
  pool.ResetStats();
  pool.Fetch(P(3)).value();
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST_F(BufferPoolTest, GuardMoveTransfersPin) {
  BufferPool pool(&disk_, 2);
  BufferPool::PageGuard g;
  EXPECT_FALSE(g.valid());
  {
    auto inner = pool.Fetch(P(1)).value();
    g = std::move(inner);
    EXPECT_FALSE(inner.valid());  // NOLINT(bugprone-use-after-move)
  }
  ASSERT_TRUE(g.valid());
  EXPECT_EQ(g.data()[0], std::byte{1});
  EXPECT_EQ(g.id().page, 1u);
}

TEST_F(BufferPoolTest, SetCapacityShrinksResidency) {
  BufferPool pool(&disk_, 8);
  for (PageNo p = 0; p < 8; ++p) pool.Fetch(P(p)).value();
  EXPECT_EQ(pool.resident_frames(), 8u);
  pool.SetCapacity(3);
  EXPECT_EQ(pool.resident_frames(), 3u);
  pool.ResetStats();
  pool.Fetch(P(7)).value();  // the most recent should have survived
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST_F(BufferPoolTest, ClearDropsCachedPages) {
  BufferPool pool(&disk_, 8);
  for (PageNo p = 0; p < 4; ++p) pool.Fetch(P(p)).value();
  pool.Clear();
  EXPECT_EQ(pool.resident_frames(), 0u);
  pool.ResetStats();
  pool.Fetch(P(0)).value();
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST_F(BufferPoolTest, FetchErrorsPropagate) {
  BufferPool pool(&disk_, 2);
  EXPECT_FALSE(pool.Fetch({file_, 999}).ok());
  EXPECT_FALSE(pool.Fetch({file_ + 9, 0}).ok());
}

// Property test: the pool's hit/miss decisions match a reference LRU model
// under a random workload.
TEST_F(BufferPoolTest, MatchesReferenceLruModel) {
  const size_t kCapacity = 5;
  BufferPool pool(&disk_, kCapacity);
  std::deque<PageNo> model;  // front = LRU
  Random rng(99);
  for (int step = 0; step < 5000; ++step) {
    PageNo p = static_cast<PageNo>(rng.Uniform(12));
    bool model_hit = false;
    for (auto it = model.begin(); it != model.end(); ++it) {
      if (*it == p) {
        model.erase(it);
        model_hit = true;
        break;
      }
    }
    model.push_back(p);
    if (model.size() > kCapacity) model.pop_front();

    uint64_t hits_before = pool.stats().hits;
    pool.Fetch(P(p)).value();
    bool pool_hit = pool.stats().hits > hits_before;
    ASSERT_EQ(pool_hit, model_hit) << "step " << step << " page " << p;
  }
}

}  // namespace
}  // namespace mcn::storage
