// Chaos suite (DESIGN.md §10): the full service stack under deterministic
// fault injection. Invariants under faults:
//   - no crash, no hang, no leaked fd / session / thread;
//   - every affected request resolves with a *typed* Status (IOError,
//     Corruption, DeadlineExceeded, ...), never a wrong answer;
//   - once faults are healed (set_enabled(false)), replaying the same
//     specs yields byte-identical result hashes to a never-faulted run —
//     i.e. injected failures cannot poison caches or on-disk state.
// All randomness (fault draws included) derives from MCN_TEST_SEED via
// AnnounceSeed, so a red run reproduces from the logged seed alone.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "mcn/api/client.h"
#include "mcn/api/server.h"
#include "mcn/common/fault_injector.h"
#include "mcn/exec/query_service.h"
#include "mcn/gen/workload.h"
#include "test_util.h"

namespace mcn {
namespace {

using api::Client;
using api::IncrementalSpec;
using api::QueryKind;
using api::QuerySpec;
using api::Server;
using api::SkylineSpec;
using api::TopKSpec;

/// Installs an injector for one test scope; uninstalls even on failure.
struct InjectorGuard {
  explicit InjectorGuard(FaultInjector* fi) { FaultInjector::Install(fi); }
  ~InjectorGuard() { FaultInjector::Install(nullptr); }
};

/// Open fds of this process — the leak gauge for the wire chaos tests.
int CountOpenFds() {
  int count = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++count;
  }
  // The iterator itself holds one fd while counting.
  return count - 1;
}

gen::ExperimentConfig SmallConfig(uint64_t seed) {
  gen::ExperimentConfig config;
  config.nodes = 400;
  config.edges = 520;
  config.facilities = 60;
  config.clusters = 4;
  config.num_costs = 3;
  config.buffer_pct = 1.0;
  config.seed = seed;
  return config;
}

struct Rig {
  std::unique_ptr<gen::ShardedInstance> instance;
  std::unique_ptr<exec::QueryService> service;

  static Rig Make(int workers, uint64_t seed) {
    Rig rig;
    auto built = gen::BuildShardedInstance(SmallConfig(seed), 1);
    EXPECT_TRUE(built.ok());
    rig.instance = std::move(built).value();
    exec::ServiceOptions opts;
    opts.num_workers = workers;
    opts.queue_capacity = 64;
    opts.pool_frames_per_worker = rig.instance->pool_frames;
    auto service = exec::QueryService::Create(&rig.instance->storage,
                                              rig.instance->files, opts);
    EXPECT_TRUE(service.ok());
    rig.service = std::move(service).value();
    return rig;
  }
};

std::vector<QuerySpec> MixedSpecs(const gen::ShardedInstance& instance,
                                  uint64_t seed, int count) {
  Random rng(seed);
  const int d = instance.graph.num_costs();
  std::vector<QuerySpec> specs;
  for (int i = 0; i < count; ++i) {
    const graph::Location loc = instance.RandomQueryLocation(rng);
    switch (i % 3) {
      case 0:
        specs.push_back(SkylineSpec(loc));
        break;
      case 1:
        specs.push_back(TopKSpec(loc, 4, test::TestWeights(d, seed + i)));
        break;
      default:
        specs.push_back(
            IncrementalSpec(loc, 3, test::TestWeights(d, seed + i)));
        break;
    }
  }
  return specs;
}

/// The statuses a fault-injected or overloaded request may legitimately
/// carry. Anything else under chaos is a bug.
bool IsChaosStatus(const Status& s) {
  switch (s.code()) {
    case StatusCode::kIOError:
    case StatusCode::kCorruption:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kCancelled:
      return true;
    default:
      return false;
  }
}

TEST(ChaosTest, DiskFaultsHealToByteIdenticalResults) {
  const uint64_t seed = test::AnnounceSeed("ChaosTest.DiskFaults");
  Rig rig = Rig::Make(/*workers=*/3, /*seed=*/11);
  const auto specs = MixedSpecs(*rig.instance, 101, 24);

  // Never-faulted baseline.
  std::vector<uint64_t> baseline;
  for (const QuerySpec& spec : specs) {
    exec::QueryResult result = rig.service->Submit(spec).get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    baseline.push_back(result.result_hash);
  }

  FaultInjector::Options fault_options;
  fault_options.seed = test::DeriveSeed(seed, 1);
  fault_options.disk_eio = 0.002;  // a few per thousand page reads
  fault_options.disk_delay = 0.001;
  fault_options.disk_delay_us = 50;
  FaultInjector injector(fault_options);
  InjectorGuard guard(&injector);

  // Under faults: typed statuses only, and a successful result is still
  // the *correct* result (determinism contract: faults change whether a
  // query finishes, never the bytes of a success).
  int failed = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    exec::QueryResult result = rig.service->Submit(specs[i]).get();
    if (result.status.ok()) {
      EXPECT_EQ(result.result_hash, baseline[i]) << "faulted run " << i;
    } else {
      EXPECT_TRUE(IsChaosStatus(result.status)) << result.status.ToString();
      ++failed;
    }
  }
  EXPECT_GT(injector.injected(), 0u) << "chaos run injected nothing";
  EXPECT_GT(failed, 0) << "disk faults never surfaced (rate too low?)";

  // Heal, then replay: byte-identical to the never-faulted baseline —
  // failed reads must not have poisoned the buffer pool or fetch caches.
  injector.set_enabled(false);
  for (size_t i = 0; i < specs.size(); ++i) {
    exec::QueryResult result = rig.service->Submit(specs[i]).get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.result_hash, baseline[i]) << "healed run " << i;
  }
  rig.service->Shutdown();
}

TEST(ChaosTest, WireChaosYieldsTypedStatusesAndLeaksNothing) {
  const uint64_t seed = test::AnnounceSeed("ChaosTest.WireChaos");
  Rig rig = Rig::Make(/*workers=*/2, /*seed=*/13);
  const auto specs = MixedSpecs(*rig.instance, 202, 12);

  // Baseline hash before any chaos (and the fd level to restore to).
  std::vector<uint64_t> baseline;
  for (const QuerySpec& spec : specs) {
    exec::QueryResult result = rig.service->Submit(spec).get();
    ASSERT_TRUE(result.status.ok());
    baseline.push_back(result.result_hash);
  }
  const int fds_before = CountOpenFds();

  FaultInjector::Options fault_options;
  fault_options.seed = test::DeriveSeed(seed, 2);
  fault_options.send_eio = 0.03;
  fault_options.torn_write = 0.03;
  fault_options.recv_eio = 0.02;
  fault_options.recv_delay = 0.10;
  fault_options.recv_delay_us = 100;
  FaultInjector injector(fault_options);
  InjectorGuard guard(&injector);

  {
    auto server = Server::Start(rig.service.get(), {});
    ASSERT_TRUE(server.ok());
    Client::Options client_options;
    client_options.retry.max_attempts = 4;
    client_options.retry.base_backoff_ms = 1;
    client_options.retry.max_backoff_ms = 4;
    client_options.retry.seed = test::DeriveSeed(seed, 3);
    auto client = Client::Connect("127.0.0.1", (*server)->port(),
                                  client_options);
    // The very first dial can already be hit by faults; that's chaos.
    int ok = 0, faulted = 0;
    for (int round = 0; round < 5; ++round) {
      for (size_t i = 0; i < specs.size(); ++i) {
        if (!client.ok()) {
          client = Client::Connect("127.0.0.1", (*server)->port(),
                                   client_options);
          if (!client.ok()) continue;
        }
        auto response = (*client)->Execute(specs[i]);
        const Status status =
            response.ok() ? response.value().status : response.status();
        if (status.ok()) {
          // A success under chaos is still byte-correct.
          EXPECT_EQ(response.value().result_hash, baseline[i]);
          ++ok;
        } else {
          EXPECT_TRUE(IsChaosStatus(status)) << status.ToString();
          ++faulted;
        }
      }
    }
    EXPECT_GT(injector.injected(), 0u);
    EXPECT_GT(ok, 0) << "nothing survived the chaos (rates too high?)";
    EXPECT_GT(faulted + ok, 0);

    // Heal the transport mid-run: the same server and a fresh client now
    // replay the baseline byte-identically.
    injector.set_enabled(false);
    auto healed = Client::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(healed.ok()) << healed.status().ToString();
    for (size_t i = 0; i < specs.size(); ++i) {
      auto response = (*healed)->Execute(specs[i]);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      ASSERT_TRUE(response.value().status.ok());
      EXPECT_EQ(response.value().result_hash, baseline[i]);
    }
    // Stop() asserts zero leaked sessions internally.
    (*server)->Stop();
  }

  // Everything torn down: no fd may have leaked through all the broken
  // connections, torn frames and reconnects.
  EXPECT_EQ(CountOpenFds(), fds_before);
  rig.service->Shutdown();
}

TEST(ChaosTest, SessionChurnUnderChaosNeverLeaksSessions) {
  const uint64_t seed = test::AnnounceSeed("ChaosTest.SessionChurn");
  Rig rig = Rig::Make(/*workers=*/2, /*seed=*/17);
  const int d = rig.instance->graph.num_costs();

  FaultInjector::Options fault_options;
  fault_options.seed = test::DeriveSeed(seed, 4);
  fault_options.torn_write = 0.05;
  fault_options.recv_eio = 0.03;
  FaultInjector injector(fault_options);
  InjectorGuard guard(&injector);

  auto server = Server::Start(rig.service.get(), {});
  ASSERT_TRUE(server.ok());
  Random rng(test::DeriveSeed(seed, 5));
  for (int round = 0; round < 20; ++round) {
    auto client = Client::Connect("127.0.0.1", (*server)->port());
    if (!client.ok()) continue;  // dial lost to chaos: next round
    auto session = (*client)->OpenSession(IncrementalSpec(
        rig.instance->RandomQueryLocation(rng), 2,
        test::TestWeights(d, seed + round)));
    if (!session.ok()) continue;  // open lost to chaos (typed either way)
    for (int batch = 0; batch < 3; ++batch) {
      auto next = (*client)->Next(*session, 2);
      if (!next.ok() || !next.value().status.ok()) break;
      if (next.value().exhausted) break;
    }
    if (round % 2 == 0 && (*client)->connected()) {
      (void)(*client)->CloseSession(*session);
    }
    // Odd rounds abandon the session: disconnect cleanup must reclaim it.
  }

  // Heal, drop all clients (done above by scope), and wait for the
  // connection threads to finish their cleanup.
  injector.set_enabled(false);
  for (int spin = 0; spin < 400 && rig.service->num_open_sessions() != 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(rig.service->num_open_sessions(), 0u);
  EXPECT_EQ((*server)->sessions_open(), 0);
  (*server)->Stop();  // asserts the same invariant internally
  rig.service->Shutdown();
}

TEST(ChaosTest, FaultSpecParsingRoundTrips) {
  auto parsed = FaultInjector::ParseSpec(
      "seed=42,disk_eio=0.25,disk_delay=0.5,disk_delay_us=100,"
      "send_eio=0.1,torn_write=0.2,recv_eio=0.3,recv_delay=0.4,"
      "recv_delay_us=7");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().seed, 42u);
  EXPECT_DOUBLE_EQ(parsed.value().disk_eio, 0.25);
  EXPECT_DOUBLE_EQ(parsed.value().disk_delay, 0.5);
  EXPECT_EQ(parsed.value().disk_delay_us, 100);
  EXPECT_DOUBLE_EQ(parsed.value().send_eio, 0.1);
  EXPECT_DOUBLE_EQ(parsed.value().torn_write, 0.2);
  EXPECT_DOUBLE_EQ(parsed.value().recv_eio, 0.3);
  EXPECT_DOUBLE_EQ(parsed.value().recv_delay, 0.4);
  EXPECT_EQ(parsed.value().recv_delay_us, 7);

  EXPECT_FALSE(FaultInjector::ParseSpec("disk_eio=1.5").ok());   // p > 1
  EXPECT_FALSE(FaultInjector::ParseSpec("unknown_key=1").ok());
  EXPECT_FALSE(FaultInjector::ParseSpec("disk_eio").ok());       // no '='
  EXPECT_FALSE(FaultInjector::ParseSpec("seed=abc").ok());
  EXPECT_TRUE(FaultInjector::ParseSpec("").ok());  // all defaults
}

TEST(ChaosTest, InjectorDrawsAreDeterministicPerSeed) {
  FaultInjector::Options fault_options;
  fault_options.seed = 77;
  fault_options.disk_eio = 0.5;
  auto draw_pattern = [&] {
    FaultInjector injector(fault_options);
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern.push_back(injector.OnDiskRead().ok() ? '.' : 'X');
    }
    return pattern;
  };
  const std::string first = draw_pattern();
  EXPECT_EQ(first, draw_pattern());  // same seed, same fault schedule
  EXPECT_NE(first.find('X'), std::string::npos);
  EXPECT_NE(first.find('.'), std::string::npos);
  fault_options.seed = 78;
  FaultInjector other(fault_options);
  std::string other_pattern;
  for (int i = 0; i < 64; ++i) {
    other_pattern.push_back(other.OnDiskRead().ok() ? '.' : 'X');
  }
  EXPECT_NE(first, other_pattern);
}

}  // namespace
}  // namespace mcn
