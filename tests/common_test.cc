#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "mcn/common/logging.h"
#include "mcn/common/macros.h"
#include "mcn/common/random.h"
#include "mcn/common/result.h"
#include "mcn/common/status.h"
#include "mcn/common/stopwatch.h"

namespace mcn {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kCorruption,
        StatusCode::kIOError, StatusCode::kFailedPrecondition,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_NE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::IOError("x"), Status::IOError("x"));
  EXPECT_FALSE(Status::IOError("x") == Status::IOError("y"));
  EXPECT_FALSE(Status::IOError("x") == Status::Corruption("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Result<int> HelperReturnsThroughMacro(bool fail) {
  auto inner = [&]() -> Result<int> {
    if (fail) return Status::Internal("inner failed");
    return 10;
  };
  MCN_ASSIGN_OR_RETURN(int v, inner());
  return v + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(HelperReturnsThroughMacro(false).value(), 11);
  EXPECT_EQ(HelperReturnsThroughMacro(true).status().code(),
            StatusCode::kInternal);
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RandomTest, UniformRespectsBound) {
  Random rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, UniformCoversRange) {
  Random rng(6);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, UniformIntInclusiveBounds) {
  Random rng(7);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_seen |= v == -3;
    hi_seen |= v == 3;
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(8);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(RandomTest, GaussianMoments) {
  Random rng(9);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RandomTest, ExponentialMean) {
  Random rng(10);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential();
  EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(RandomTest, BernoulliRate) {
  Random rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RandomTest, ShuffleIsPermutation) {
  Random rng(12);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RandomTest, ForkDecorrelates) {
  Random a(13);
  Random b = a.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch sw;
  volatile double x = 0;
  for (int i = 0; i < 1000; ++i) x = x + std::sqrt(static_cast<double>(i));
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  EXPECT_GE(sw.ElapsedMillis(), sw.ElapsedSeconds());
}


TEST(LoggingTest, LevelGating) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold messages are dropped silently; this must not crash.
  MCN_LOG(Debug) << "invisible " << 42;
  MCN_LOG(Error) << "visible error path " << 3.14;
  SetLogLevel(LogLevel::kDebug);
  MCN_LOG(Info) << "now visible";
  SetLogLevel(original);
}

}  // namespace
}  // namespace mcn
