// Negative test for the thread-safety contracts: this TU accesses a
// GUARDED_BY member without holding its mutex and MUST FAIL to compile
// under clang with -Wthread-safety -Werror=thread-safety. CMake builds it
// as an EXCLUDE_FROM_ALL target wrapped in a WILL_FAIL ctest entry
// (label: static), so a regression that silently disables the analysis —
// a broken macro, a lost compile flag — turns the test red.
//
// Keep exactly one violation per guarded pattern here; a clean compile of
// any of them means the analysis is off.
#include "mcn/common/mutex.h"
#include "mcn/common/thread_annotations.h"

namespace {

class Account {
 public:
  // VIOLATION: writes balance_ without mu_ held.
  void DepositUnlocked(int amount) { balance_ += amount; }

  // VIOLATION: Wait on a mutex the caller does not hold.
  void WaitUnlocked() { cv_.Wait(&mu_); }

  // VIOLATION: REQUIRES callee invoked without the lock.
  void CallRequiresUnlocked() { AssumeLocked(); }

 private:
  void AssumeLocked() MCN_REQUIRES(mu_) { balance_ = 0; }

  mcn::Mutex mu_;
  mcn::CondVar cv_;
  int balance_ MCN_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.DepositUnlocked(1);
  account.WaitUnlocked();
  account.CallRequiresUnlocked();
  return 0;
}
