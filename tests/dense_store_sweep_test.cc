// Randomized LSA-vs-CEA-vs-naive equivalence sweep guarding the dense
// CandidateStore refactor: over instances varying d, facility density and
// buffer size, both disk algorithms must report the exact oracle skyline /
// top-k (identical sets, identical report order between engines) and agree
// on every engine-independent Stats field — the candidate-store
// bookkeeping (candidates_peak, facilities_seen, nn_pops, ...) must not
// depend on the I/O flavor driving the pops.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mcn/algo/skyline_query.h"
#include "mcn/algo/topk_query.h"
#include "mcn/expand/engines.h"
#include "test_util.h"

namespace mcn::algo {
namespace {

using graph::Location;

struct SweepPoint {
  int num_costs;
  uint32_t facilities;
  double buffer_pct;
  uint64_t seed;
};

std::vector<SweepPoint> SweepPoints() {
  std::vector<SweepPoint> points;
  const uint64_t base = test::AnnounceSeed("dense_store_sweep_test");
  uint64_t index = 0;
  for (int d : {2, 3, 4}) {
    for (uint32_t facilities : {15u, 60u, 180u}) {
      for (double buffer_pct : {0.0, 0.5, 2.0}) {
        points.push_back(
            SweepPoint{d, facilities, buffer_pct,
                       test::DeriveSeed(base, ++index)});
      }
    }
  }
  return points;
}

test::SmallConfig ConfigFor(const SweepPoint& p) {
  test::SmallConfig config;
  config.num_costs = p.num_costs;
  config.facilities = p.facilities;
  config.buffer_pct = p.buffer_pct;
  config.seed = p.seed;
  return config;
}

std::vector<graph::FacilityId> Order(const std::vector<SkylineEntry>& es) {
  std::vector<graph::FacilityId> ids;
  for (const auto& e : es) ids.push_back(e.facility);
  return ids;
}

TEST(DenseStoreSweepTest, SkylineMatchesOracleAcrossEnginesAndConfigs) {
  for (const SweepPoint& p : SweepPoints()) {
    auto instance = test::MakeSmallInstance(ConfigFor(p)).value();
    Random rng(p.seed * 31 + 7);
    for (int qi = 0; qi < 3; ++qi) {
      Location q = instance->RandomQueryLocation(rng);
      std::set<graph::FacilityId> oracle =
          test::OracleSkyline(instance->graph, instance->facilities, q);

      instance->ResetIoState();
      auto lsa =
          expand::MakeEngine(expand::EngineKind::kLsa, instance->reader.get(),
                             q)
              .value();
      SkylineQuery lsa_query(lsa.get());
      auto lsa_result = lsa_query.ComputeAll().value();

      instance->ResetIoState();
      auto cea =
          expand::MakeEngine(expand::EngineKind::kCea, instance->reader.get(),
                             q)
              .value();
      SkylineQuery cea_query(cea.get());
      auto cea_result = cea_query.ComputeAll().value();

      SCOPED_TRACE("d=" + std::to_string(p.num_costs) +
                   " |P|=" + std::to_string(p.facilities) +
                   " buffer=" + std::to_string(p.buffer_pct) + "% q=" +
                   q.ToString());
      // Identical skyline sets, identical progressive report order.
      std::vector<graph::FacilityId> lsa_order = Order(lsa_result);
      std::set<graph::FacilityId> lsa_ids(lsa_order.begin(),
                                          lsa_order.end());
      EXPECT_EQ(lsa_ids, oracle);
      EXPECT_EQ(lsa_order, Order(cea_result));

      // Engine-independent Stats must agree field by field.
      const SkylineQuery::Stats& ls = lsa_query.stats();
      const SkylineQuery::Stats& cs = cea_query.stats();
      EXPECT_EQ(ls.nn_pops, cs.nn_pops);
      EXPECT_EQ(ls.dominance_checks, cs.dominance_checks);
      EXPECT_EQ(ls.candidates_peak, cs.candidates_peak);
      EXPECT_EQ(ls.facilities_seen, cs.facilities_seen);
      EXPECT_EQ(ls.skyline_size, cs.skyline_size);
      EXPECT_EQ(ls.drain_rounds, cs.drain_rounds);
      EXPECT_EQ(ls.deferred_pins, cs.deferred_pins);
      EXPECT_EQ(ls.reached_shrinking, cs.reached_shrinking);

      // Internal invariants of the candidate-store bookkeeping.
      EXPECT_EQ(ls.skyline_size, lsa_result.size());
      EXPECT_GE(ls.facilities_seen, ls.skyline_size);
      EXPECT_GE(ls.nn_pops, ls.facilities_seen);
      EXPECT_LE(ls.candidates_peak, ls.facilities_seen);
      if (!lsa_result.empty()) EXPECT_GE(ls.candidates_peak, 1u);
      EXPECT_TRUE(lsa_query.done());
    }
  }
}

TEST(DenseStoreSweepTest, TopKMatchesOracleAcrossEnginesAndConfigs) {
  for (const SweepPoint& p : SweepPoints()) {
    auto instance = test::MakeSmallInstance(ConfigFor(p)).value();
    Random rng(p.seed * 17 + 3);
    for (int qi = 0; qi < 2; ++qi) {
      Location q = instance->RandomQueryLocation(rng);
      AggregateFn f =
          WeightedSum(test::TestWeights(p.num_costs, p.seed + qi));
      int k = 1 + static_cast<int>(p.seed % 5);
      auto oracle =
          test::OracleTopK(instance->graph, instance->facilities, q, f, k);

      TopKOptions opts;
      opts.k = k;

      instance->ResetIoState();
      auto lsa =
          expand::MakeEngine(expand::EngineKind::kLsa, instance->reader.get(),
                             q)
              .value();
      TopKQuery lsa_query(lsa.get(), f, opts);
      auto lsa_result = lsa_query.Run().value();

      instance->ResetIoState();
      auto cea =
          expand::MakeEngine(expand::EngineKind::kCea, instance->reader.get(),
                             q)
              .value();
      TopKQuery cea_query(cea.get(), f, opts);
      auto cea_result = cea_query.Run().value();

      SCOPED_TRACE("d=" + std::to_string(p.num_costs) +
                   " |P|=" + std::to_string(p.facilities) +
                   " buffer=" + std::to_string(p.buffer_pct) + "% k=" +
                   std::to_string(k) + " q=" + q.ToString());
      ASSERT_EQ(lsa_result.size(), oracle.size());
      ASSERT_EQ(cea_result.size(), oracle.size());
      for (size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_EQ(lsa_result[i].facility, cea_result[i].facility);
        EXPECT_NEAR(lsa_result[i].score, oracle[i].score, 1e-9);
        // Scores must match the oracle even where id ties allow either
        // facility order.
        EXPECT_NEAR(cea_result[i].score, oracle[i].score, 1e-9);
      }

      const TopKQuery::Stats& ls = lsa_query.stats();
      const TopKQuery::Stats& cs = cea_query.stats();
      EXPECT_EQ(ls.nn_pops, cs.nn_pops);
      EXPECT_EQ(ls.facilities_seen, cs.facilities_seen);
      EXPECT_EQ(ls.candidates_peak, cs.candidates_peak);
      EXPECT_EQ(ls.lb_eliminations, cs.lb_eliminations);
      EXPECT_EQ(ls.replacements, cs.replacements);
      EXPECT_EQ(ls.reached_shrinking, cs.reached_shrinking);
      EXPECT_LE(ls.candidates_peak, ls.facilities_seen);
      EXPECT_GE(ls.nn_pops, ls.facilities_seen);
    }
  }
}

}  // namespace
}  // namespace mcn::algo
