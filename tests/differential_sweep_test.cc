// Randomized differential suite for intra-query parallel d-expansion
// (DESIGN.md §7). Over instances sweeping d in {2..5} and tiny/large
// buffer pools, for every ProbePolicy and every query processor:
//
//  * the turn schedule at parallelism 1 (inline), 2 and 4 (pooled) must be
//    byte-identical: same result hashes, same logical fetch-request
//    counts, same physical fetch counts (the single-flight guard makes
//    thread count invisible to the I/O accounting);
//  * physical fetches obey the §IV-B "at most once per query" invariant
//    (every physical fetch corresponds to exactly one cached record);
//  * the ablation frontier policies run width-1 turns, which replay the
//    classic serial schedule exactly — hashes and logical counts must
//    match the serial engines byte for byte;
//  * round-robin (the parallel schedule proper) must agree with the
//    serial path and the naive.h ground truth on the results themselves:
//    identical skyline sets, identical top-k / incremental entries.
//
// All randomness derives from MCN_TEST_SEED (logged on entry); every
// failure message carries the reseed command.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "mcn/algo/incremental_topk.h"
#include "mcn/algo/naive.h"
#include "mcn/algo/result_hash.h"
#include "mcn/algo/skyline_query.h"
#include "mcn/algo/topk_query.h"
#include "mcn/exec/expansion_executor.h"
#include "mcn/expand/engines.h"
#include "mcn/expand/probe_scheduler.h"
#include "mcn/gen/workload.h"
#include "mcn/shard/partition.h"
#include "mcn/shard/sharded_builder.h"
#include "mcn/shard/sharded_storage.h"
#include "test_util.h"

namespace mcn::algo {
namespace {

using expand::ParallelProbeScheduler;

struct SweepPoint {
  int num_costs;
  double buffer_pct;
  uint64_t seed;
};

std::vector<SweepPoint> SweepPoints() {
  std::vector<SweepPoint> points;
  const uint64_t base = test::AnnounceSeed("differential_sweep_test");
  uint64_t index = 0;
  for (int d : {2, 3, 4, 5}) {
    for (double buffer_pct : {0.05, 1.0}) {
      points.push_back(SweepPoint{d, buffer_pct, test::DeriveSeed(base, ++index)});
    }
  }
  return points;
}

std::string ReseedHint() {
  return "rerun: MCN_TEST_SEED=" + std::to_string(test::TestSeed()) +
         " ctest -R differential_sweep_test";
}

/// Everything one query run is compared on.
struct Capture {
  uint64_t hash = algo::kFnvOffsetBasis;
  std::vector<graph::FacilityId> ids;  ///< report order
  std::vector<double> scores;          ///< top-k / incremental only
  expand::FetchProvider::Stats fetch;  ///< logical + physical counts
  size_t cached_nodes = 0;             ///< striped runs only
  size_t cached_edges = 0;
};

enum class Algo { kSkyline, kTopK, kIncremental };

const char* AlgoName(Algo a) {
  switch (a) {
    case Algo::kSkyline: return "skyline";
    case Algo::kTopK: return "topk";
    case Algo::kIncremental: return "incremental";
  }
  return "?";
}

Capture RunOne(Algo algo, expand::NnEngine* engine, QueryOptions exec,
               ProbePolicy policy, const AggregateFn& f, int k) {
  Capture c;
  switch (algo) {
    case Algo::kSkyline: {
      SkylineOptions opts;
      opts.probe_policy = policy;
      opts.exec = exec;
      SkylineQuery query(engine, opts);
      auto rows = query.ComputeAll();
      MCN_CHECK(rows.ok());
      c.hash = HashResult(rows.value());
      for (const auto& e : rows.value()) c.ids.push_back(e.facility);
      break;
    }
    case Algo::kTopK: {
      TopKOptions opts;
      opts.k = k;
      opts.probe_policy = policy;
      opts.exec = exec;
      TopKQuery query(engine, f, opts);
      auto rows = query.Run();
      MCN_CHECK(rows.ok());
      c.hash = HashResult(rows.value());
      for (const auto& e : rows.value()) {
        c.ids.push_back(e.facility);
        c.scores.push_back(e.score);
      }
      break;
    }
    case Algo::kIncremental: {
      IncrementalTopK query(engine, f, policy, exec);
      std::vector<TopKEntry> rows;
      for (int i = 0; i < k; ++i) {
        auto next = query.NextBest();
        MCN_CHECK(next.ok());
        if (!next.value().has_value()) break;
        rows.push_back(*next.value());
      }
      c.hash = HashResult(rows);
      for (const auto& e : rows) {
        c.ids.push_back(e.facility);
        c.scores.push_back(e.score);
      }
      break;
    }
  }
  c.fetch = engine->fetch().stats();
  return c;
}

class DifferentialSweepTest : public ::testing::Test {};

TEST(DifferentialSweepTest, SerialAndParallelSchedulesAgree) {
  for (const SweepPoint& p : SweepPoints()) {
    test::SmallConfig config;
    config.num_costs = p.num_costs;
    config.buffer_pct = p.buffer_pct;
    config.seed = p.seed;
    auto instance = test::MakeSmallInstance(config).value();
    const size_t frames = instance->pool->capacity();

    // One executor per parallelism level; parallelism 1 builds no pool
    // and runs the identical schedule inline (the serial anchor).
    std::vector<int> levels = {1, 2, 4};
    std::vector<std::unique_ptr<exec::ExpansionExecutor>> executors;
    for (int par : levels) {
      executors.push_back(exec::ExpansionExecutor::Create(
                              &instance->disk, instance->files, par, frames)
                              .value());
    }

    // The executors hold BeginConcurrentReads scopes on the shared disk,
    // so between runs only the pool may be reset (disk counter resets
    // would trip the storage layer's single-writer DCHECK — by design).
    auto reset_pool = [&] {
      instance->pool->Clear();
      instance->pool->ResetStats();
    };

    Random rng(test::DeriveSeed(p.seed, 77));
    for (int qi = 0; qi < 2; ++qi) {
      graph::Location q = instance->RandomQueryLocation(rng);
      AggregateFn f = WeightedSum(
          test::TestWeights(p.num_costs, test::DeriveSeed(p.seed, 100 + qi)));
      const int k = 2 + static_cast<int>(test::DeriveSeed(p.seed, qi) % 5);

      // naive.h ground truth (full materialization + classic operators).
      reset_pool();
      auto naive_sky = NaiveSkyline(*instance->reader, q).value();
      std::set<graph::FacilityId> naive_sky_ids;
      for (const auto& e : naive_sky) naive_sky_ids.insert(e.facility);
      reset_pool();
      auto naive_topk = NaiveTopK(*instance->reader, q, f, k).value();

      for (ProbePolicy policy :
           {ProbePolicy::kRoundRobin, ProbePolicy::kSmallestFrontier,
            ProbePolicy::kLargestFrontier}) {
        for (Algo algo : {Algo::kSkyline, Algo::kTopK, Algo::kIncremental}) {
          SCOPED_TRACE("d=" + std::to_string(p.num_costs) +
                       " buffer=" + std::to_string(p.buffer_pct) +
                       " q=" + q.ToString() + " policy=" +
                       std::to_string(static_cast<int>(policy)) + " algo=" +
                       AlgoName(algo) + " | " + ReseedHint());
          // Classic serial engines (per-probe schedule).
          reset_pool();
          auto serial_engine =
              expand::MakeEngine(expand::EngineKind::kCea,
                                 instance->reader.get(), q)
                  .value();
          Capture serial = RunOne(algo, serial_engine.get(), QueryOptions{},
                                  policy, f, k);

          // Turn schedule at parallelism 1 (inline), 2 and 4 (pooled).
          std::vector<Capture> turns;
          for (size_t li = 0; li < levels.size(); ++li) {
            executors[li]->ResetIoState();
            auto rig = executors[li]->NewQuery(q).value();
            QueryOptions exec;
            exec.parallelism = levels[li];
            exec.scheduler = rig.scheduler.get();
            Capture c = RunOne(algo, rig.engine.get(), exec, policy, f, k);
            c.cached_nodes = rig.engine->striped_fetch()->cached_nodes();
            c.cached_edges = rig.engine->striped_fetch()->cached_edges();
            turns.push_back(c);
          }

          // (1) Thread count must be invisible: byte-identical hashes,
          // identical logical requests, identical physical fetches.
          for (size_t li = 1; li < turns.size(); ++li) {
            EXPECT_EQ(turns[0].hash, turns[li].hash)
                << "parallelism " << levels[li] << " diverged";
            EXPECT_EQ(turns[0].fetch.adjacency_requests,
                      turns[li].fetch.adjacency_requests);
            EXPECT_EQ(turns[0].fetch.facility_requests,
                      turns[li].fetch.facility_requests);
            EXPECT_EQ(turns[0].fetch.adjacency_fetches,
                      turns[li].fetch.adjacency_fetches);
            EXPECT_EQ(turns[0].fetch.facility_fetches,
                      turns[li].fetch.facility_fetches);
          }

          // (2) §IV-B accounting: every physical fetch produced exactly
          // one cached record — fetched at most once per query — and
          // physical never exceeds logical.
          for (size_t li = 0; li < turns.size(); ++li) {
            EXPECT_EQ(turns[li].fetch.adjacency_fetches,
                      turns[li].cached_nodes);
            EXPECT_EQ(turns[li].fetch.facility_fetches,
                      turns[li].cached_edges);
            EXPECT_LE(turns[li].fetch.adjacency_fetches,
                      turns[li].fetch.adjacency_requests);
            EXPECT_LE(turns[li].fetch.facility_fetches,
                      turns[li].fetch.facility_requests);
          }

          if (policy != ProbePolicy::kRoundRobin) {
            // (3) Width-1 turns replay the serial schedule exactly.
            EXPECT_EQ(serial.hash, turns[0].hash);
            EXPECT_EQ(serial.fetch.adjacency_requests,
                      turns[0].fetch.adjacency_requests);
            EXPECT_EQ(serial.fetch.facility_requests,
                      turns[0].fetch.facility_requests);
            EXPECT_EQ(serial.fetch.adjacency_fetches,
                      turns[0].fetch.adjacency_fetches);
            EXPECT_EQ(serial.fetch.facility_fetches,
                      turns[0].fetch.facility_fetches);
            continue;
          }

          // (4) The relaxed frontier-ordered delivery mode (ablation) is
          // a different but still deterministic schedule: inline and
          // pooled runs must be byte-identical to each other.
          std::vector<Capture> relaxed;
          for (size_t li : {size_t{0}, levels.size() - 1}) {
            executors[li]->ResetIoState();
            auto rig = executors[li]
                           ->NewQuery(q, ParallelProbeScheduler::Mode::
                                             kFrontierOrdered)
                           .value();
            QueryOptions exec;
            exec.parallelism = levels[li];
            exec.scheduler = rig.scheduler.get();
            relaxed.push_back(
                RunOne(algo, rig.engine.get(), exec, policy, f, k));
          }
          EXPECT_EQ(relaxed[0].hash, relaxed[1].hash)
              << "frontier-ordered mode diverged across thread counts";
          EXPECT_EQ(relaxed[0].fetch.adjacency_requests,
                    relaxed[1].fetch.adjacency_requests);
          EXPECT_EQ(relaxed[0].fetch.facility_requests,
                    relaxed[1].fetch.facility_requests);
          if (algo == Algo::kSkyline) {
            std::set<graph::FacilityId> relaxed_ids(relaxed[0].ids.begin(),
                                                    relaxed[0].ids.end());
            EXPECT_EQ(relaxed_ids, naive_sky_ids) << "frontier-ordered mode";
          } else {
            ASSERT_EQ(relaxed[0].ids.size(), naive_topk.size())
                << "frontier-ordered mode";
            for (size_t r = 0; r < naive_topk.size(); ++r) {
              EXPECT_EQ(relaxed[0].ids[r], naive_topk[r].facility)
                  << "frontier-ordered mode, rank " << r;
            }
          }

          // (5) Round-robin: the full-width turn schedule must agree with
          // the serial path and the naive ground truth on the results.
          switch (algo) {
            case Algo::kSkyline: {
              std::set<graph::FacilityId> serial_ids(serial.ids.begin(),
                                                     serial.ids.end());
              std::set<graph::FacilityId> turn_ids(turns[0].ids.begin(),
                                                   turns[0].ids.end());
              EXPECT_EQ(serial_ids, naive_sky_ids);
              EXPECT_EQ(turn_ids, naive_sky_ids);
              break;
            }
            case Algo::kTopK:
            case Algo::kIncremental: {
              // Complete cost vectors and deterministic (score, id) order:
              // the entries themselves must be byte-identical.
              EXPECT_EQ(serial.hash, turns[0].hash);
              ASSERT_EQ(turns[0].ids.size(), naive_topk.size());
              for (size_t r = 0; r < naive_topk.size(); ++r) {
                EXPECT_EQ(turns[0].ids[r], naive_topk[r].facility)
                    << "rank " << r;
                EXPECT_NEAR(turns[0].scores[r], naive_topk[r].score, 1e-9)
                    << "rank " << r;
              }
              break;
            }
          }
        }
      }
    }
  }
}

// Shard-count invariance (DESIGN.md §8): the same graph laid out as K in
// {1, 2, 4} shard file sets must produce byte-identical result hashes and
// identical logical/physical record-fetch counts, for all three query
// processors at parallelism 1, 2 and 4, anchored against the flat (un-
// sharded) executor. K only moves pages between disks — the K = 1 case
// degenerates to the flat page layout exactly — so any divergence is a
// routing bug, not a modeling choice.
TEST(DifferentialSweepTest, ShardCountInvariance) {
  const uint64_t base = test::AnnounceSeed("differential_sweep_test");
  for (int d : {2, 4}) {
    test::SmallConfig config;
    config.num_costs = d;
    config.buffer_pct = 0.5;
    config.seed = test::DeriveSeed(base, 900 + static_cast<uint64_t>(d));
    auto instance = test::MakeSmallInstance(config).value();
    const size_t frames = instance->pool->capacity();

    // The same graph + facilities laid out at every shard count.
    const std::vector<int> shard_counts = {1, 2, 4};
    std::vector<std::unique_ptr<shard::ShardedStorage>> storages;
    std::vector<shard::ShardedNetworkFiles> sharded_files;
    shard::GridTilePartitioner partitioner;
    for (int k : shard_counts) {
      auto part = partitioner.Build(instance->graph, k).value();
      storages.push_back(
          std::make_unique<shard::ShardedStorage>(std::move(part)));
      sharded_files.push_back(
          shard::BuildShardedNetwork(storages.back().get(), instance->graph,
                                     instance->facilities)
              .value());
      // K = 1 reproduces the flat page layout exactly; K > 1 may pay a
      // few pages of per-shard fragmentation (partial trailing pages)
      // but never loses any.
      if (k == 1) {
        ASSERT_EQ(sharded_files.back().total_pages,
                  instance->files.total_pages);
      } else {
        ASSERT_GE(sharded_files.back().total_pages,
                  instance->files.total_pages);
      }
    }

    Random rng(test::DeriveSeed(config.seed, 5));
    for (int qi = 0; qi < 2; ++qi) {
      graph::Location q = instance->RandomQueryLocation(rng);
      const shard::ShardId home_of_q =
          q.is_node()
              ? storages.back()->partition().of_node(q.node())
              : storages.back()->partition().of_edge(q.edge());
      AggregateFn f = WeightedSum(
          test::TestWeights(d, test::DeriveSeed(config.seed, 300 + qi)));
      const int k = 2 + static_cast<int>(test::DeriveSeed(config.seed, qi) % 5);

      for (int par : {1, 2, 4}) {
        auto flat_exec =
            exec::ExpansionExecutor::Create(&instance->disk, instance->files,
                                            par, frames)
                .value();
        for (Algo algo : {Algo::kSkyline, Algo::kTopK, Algo::kIncremental}) {
          SCOPED_TRACE("d=" + std::to_string(d) + " q=" + q.ToString() +
                       " par=" + std::to_string(par) + " algo=" +
                       AlgoName(algo) + " | " + ReseedHint());
          flat_exec->ResetIoState();
          auto flat_rig = flat_exec->NewQuery(q).value();
          QueryOptions exec_opts;
          exec_opts.parallelism = par;
          exec_opts.scheduler = flat_rig.scheduler.get();
          Capture flat = RunOne(algo, flat_rig.engine.get(), exec_opts,
                                ProbePolicy::kRoundRobin, f, k);

          for (size_t ki = 0; ki < shard_counts.size(); ++ki) {
            auto sharded_exec = exec::ExpansionExecutor::Create(
                                    storages[ki].get(), sharded_files[ki],
                                    par, frames)
                                    .value();
            // Affinity: bind the slots to the query's home shard so the
            // local/remote split is meaningful below.
            sharded_exec->SetHomeShard(
                ki == shard_counts.size() - 1
                    ? home_of_q
                    : (q.is_node()
                           ? storages[ki]->partition().of_node(q.node())
                           : storages[ki]->partition().of_edge(q.edge())));
            auto rig = sharded_exec->NewQuery(q).value();
            QueryOptions sharded_opts;
            sharded_opts.parallelism = par;
            sharded_opts.scheduler = rig.scheduler.get();
            Capture got = RunOne(algo, rig.engine.get(), sharded_opts,
                                 ProbePolicy::kRoundRobin, f, k);

            // The determinism contract: K is invisible to results and to
            // the record-level I/O accounting.
            EXPECT_EQ(flat.hash, got.hash)
                << "K=" << shard_counts[ki] << " diverged";
            EXPECT_EQ(flat.fetch.adjacency_requests,
                      got.fetch.adjacency_requests);
            EXPECT_EQ(flat.fetch.facility_requests,
                      got.fetch.facility_requests);
            EXPECT_EQ(flat.fetch.adjacency_fetches,
                      got.fetch.adjacency_fetches);
            EXPECT_EQ(flat.fetch.facility_fetches,
                      got.fetch.facility_fetches);
            EXPECT_EQ(flat.ids, got.ids) << "K=" << shard_counts[ki];

            // Remote accounting: a single shard has no boundaries to
            // cross; with more shards every routed fetch lands somewhere
            // and the per-shard page reads sum to the merged total.
            const auto io = sharded_exec->ShardIoStats();
            EXPECT_GE(io.total(), got.fetch.adjacency_fetches +
                                      got.fetch.facility_fetches);
            if (shard_counts[ki] == 1) {
              EXPECT_EQ(io.remote_fetches, 0u);
            }
            uint64_t routed = 0;
            for (uint64_t n : io.fetches_to_shard) routed += n;
            EXPECT_EQ(routed, io.total());

            const auto merged = storages[ki]->MergedStats();
            uint64_t by_file = 0;
            for (const auto& fr : merged.per_file_reads) {
              by_file += fr.reads;
            }
            EXPECT_EQ(by_file, merged.page_reads);
          }
        }
      }
    }
  }
}

// Prune-index on/off parity (DESIGN.md §12): with the landmark oracle
// installed, every spec kind under every probe policy must return
// byte-identical results — and the I/O accounting must be "net of pruned
// probes": each pruned pop is an adjacency request the off run issued, and
// the on run's requests are a subset of the off run's (pruned subtrees
// vanish wholesale, hence <=, not ==). The oracle is armed only on serial
// round-robin skyline runs; every other leg — other policies, other
// processors, and the turn schedule — must keep the index literally
// invisible: zero prunes and identical request counts, not just identical
// results.
TEST(DifferentialSweepTest, PruneIndexOnOffParity) {
  const uint64_t base = test::AnnounceSeed("differential_sweep_test");
  uint64_t total_cut = 0;

  auto nodes_pruned = [](expand::NnEngine* engine) {
    uint64_t pruned = 0;
    for (int i = 0; i < engine->fetch().num_costs(); ++i) {
      pruned += engine->expansion(i).stats().nodes_pruned;
    }
    return pruned;
  };

  for (int d : {2, 3, 4}) {
    gen::ExperimentConfig config;
    config.nodes = 500;
    config.edges = 700;
    config.facilities = 48;
    config.clusters = 4;
    config.num_costs = d;
    config.buffer_pct = 1.0;
    config.seed = test::DeriveSeed(base, 700 + static_cast<uint64_t>(d));
    config.landmarks = 8;
    auto instance = gen::BuildInstance(config).value();
    ASSERT_TRUE(instance->files.landmark.present());
    net::LandmarkIndexReader* index = instance->landmark_reader.get();

    Random rng(test::DeriveSeed(config.seed, 7));
    for (int qi = 0; qi < 2; ++qi) {
      graph::Location q = instance->RandomQueryLocation(rng);
      AggregateFn f = WeightedSum(
          test::TestWeights(d, test::DeriveSeed(config.seed, 500 + qi)));
      const int k =
          2 + static_cast<int>(test::DeriveSeed(config.seed, qi) % 5);

      for (ProbePolicy policy :
           {ProbePolicy::kRoundRobin, ProbePolicy::kSmallestFrontier,
            ProbePolicy::kLargestFrontier}) {
        for (Algo algo : {Algo::kSkyline, Algo::kTopK, Algo::kIncremental}) {
          SCOPED_TRACE("d=" + std::to_string(d) + " q=" + q.ToString() +
                       " policy=" + std::to_string(static_cast<int>(policy)) +
                       " algo=" + AlgoName(algo) + " | " + ReseedHint());
          instance->ResetIoState();
          auto engine_off =
              expand::MakeEngine(expand::EngineKind::kCea,
                                 instance->reader.get(), q)
                  .value();
          Capture off = RunOne(algo, engine_off.get(), QueryOptions{},
                               policy, f, k);
          ASSERT_EQ(nodes_pruned(engine_off.get()), 0u);

          instance->ResetIoState();
          auto engine_on =
              expand::MakeEngine(expand::EngineKind::kCea,
                                 instance->reader.get(), q)
                  .value();
          QueryOptions with_index;
          with_index.landmark_index = index;
          Capture on = RunOne(algo, engine_on.get(), with_index, policy, f, k);
          const uint64_t pruned = nodes_pruned(engine_on.get());

          // Exactness: the oracle may only skip probes, never change
          // results — the full entry set, order and scores included.
          EXPECT_EQ(off.hash, on.hash);
          EXPECT_EQ(off.ids, on.ids);
          EXPECT_EQ(off.scores, on.scores);

          const bool armed =
              algo == Algo::kSkyline && policy == ProbePolicy::kRoundRobin;
          if (armed) {
            // Net-of-pruned-probes accounting: every pruned pop is a pop
            // the off run probed, and pruned subtrees also vanish.
            EXPECT_LE(on.fetch.adjacency_requests + pruned,
                      off.fetch.adjacency_requests);
            EXPECT_LE(on.fetch.facility_requests,
                      off.fetch.facility_requests);
            total_cut += pruned;
          } else {
            // Dormant legs: the index must be invisible to the schedule,
            // not merely harmless to the results.
            EXPECT_EQ(pruned, 0u);
            EXPECT_EQ(on.fetch.adjacency_requests,
                      off.fetch.adjacency_requests);
            EXPECT_EQ(on.fetch.facility_requests,
                      off.fetch.facility_requests);
          }
        }
      }

      // The turn schedule ignores the oracle by design (it would change
      // the deterministic event order): parallelism 1 with the index on
      // must replay the index-off turn schedule byte for byte.
      {
        SCOPED_TRACE("turn-mode d=" + std::to_string(d) + " q=" +
                     q.ToString() + " | " + ReseedHint());
        auto executor = exec::ExpansionExecutor::Create(
                            &instance->disk, instance->files, /*parallelism=*/1,
                            instance->pool->capacity())
                            .value();
        std::vector<Capture> runs;
        for (net::LandmarkIndexReader* idx :
             {static_cast<net::LandmarkIndexReader*>(nullptr), index}) {
          executor->ResetIoState();
          auto rig = executor->NewQuery(q).value();
          QueryOptions exec_opts;
          exec_opts.parallelism = 1;
          exec_opts.scheduler = rig.scheduler.get();
          exec_opts.landmark_index = idx;
          runs.push_back(RunOne(Algo::kSkyline, rig.engine.get(), exec_opts,
                                ProbePolicy::kRoundRobin, f, k));
          EXPECT_EQ(nodes_pruned(rig.engine.get()), 0u);
        }
        EXPECT_EQ(runs[0].hash, runs[1].hash);
        EXPECT_EQ(runs[0].ids, runs[1].ids);
        EXPECT_EQ(runs[0].fetch.adjacency_requests,
                  runs[1].fetch.adjacency_requests);
        EXPECT_EQ(runs[0].fetch.facility_requests,
                  runs[1].fetch.facility_requests);
      }
    }
  }
  // The sweep as a whole must exercise the prune path for real.
  EXPECT_GT(total_cut, 0u);
}

}  // namespace
}  // namespace mcn::algo
