#include <gtest/gtest.h>

#include <queue>

#include "mcn/common/random.h"
#include "mcn/expand/dijkstra.h"
#include "test_util.h"

namespace mcn::expand {
namespace {

using graph::CostVector;
using graph::EdgeKey;
using graph::Location;
using graph::MultiCostGraph;
using graph::NodeId;

// Bellman-Ford reference for cross-checking.
std::vector<double> BellmanFord(const MultiCostGraph& g, int ci, NodeId s) {
  std::vector<double> dist(g.num_nodes(), kInfCost);
  dist[s] = 0;
  for (NodeId round = 0; round + 1 < g.num_nodes(); ++round) {
    bool changed = false;
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      const graph::EdgeRecord& er = g.edge(e);
      double w = er.w[ci];
      if (dist[er.u] + w < dist[er.v]) {
        dist[er.v] = dist[er.u] + w;
        changed = true;
      }
      if (dist[er.v] + w < dist[er.u]) {
        dist[er.u] = dist[er.v] + w;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

TEST(DijkstraTest, TinyGraphFromNode) {
  MultiCostGraph g = test::TinyGraph();
  auto dist = ShortestPathCosts(g, 0, Location::AtNode(0));
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[3], 1.0);
  EXPECT_DOUBLE_EQ(dist[4], 3.0);   // 0-3-4
  EXPECT_DOUBLE_EQ(dist[1], 4.0);   // direct
  EXPECT_DOUBLE_EQ(dist[7], 4.0);   // 0-3-4-7
  auto dist2 = ShortestPathCosts(g, 1, Location::AtNode(0));
  EXPECT_DOUBLE_EQ(dist2[1], 1.0);
  EXPECT_DOUBLE_EQ(dist2[6], 3.0);  // 0-3-6 in cost 2
}

TEST(DijkstraTest, QueryOnEdgeSeedsBothEndpoints) {
  MultiCostGraph g = test::TinyGraph();
  // q on edge (0,1) at frac 0.25: cost-0 weight 4 -> d(0)=1, d(1)=3.
  Location q = Location::OnEdge(EdgeKey(0, 1), 0.25);
  auto dist = ShortestPathCosts(g, 0, q);
  EXPECT_DOUBLE_EQ(dist[0], 1.0);
  EXPECT_DOUBLE_EQ(dist[1], 3.0);
  EXPECT_DOUBLE_EQ(dist[3], 2.0);  // via node 0
}

TEST(DijkstraTest, MatchesBellmanFordOnRandomGraphs) {
  Random rng(21);
  for (int iter = 0; iter < 20; ++iter) {
    MultiCostGraph g(2);
    int n = 30;
    for (int i = 0; i < n; ++i) g.AddNode(rng.NextDouble(), rng.NextDouble());
    // Random connected-ish graph.
    for (int i = 1; i < n; ++i) {
      NodeId j = static_cast<NodeId>(rng.Uniform(i));
      ASSERT_TRUE(g.AddEdge(i, j,
                            CostVector{rng.UniformDouble(0, 5),
                                       rng.UniformDouble(0, 5)})
                      .ok());
    }
    for (int extra = 0; extra < 15; ++extra) {
      NodeId a = static_cast<NodeId>(rng.Uniform(n));
      NodeId b = static_cast<NodeId>(rng.Uniform(n));
      if (a == b || g.num_edges() == 0) continue;
      auto added = g.AddEdge(a, b,
                             CostVector{rng.UniformDouble(0, 5),
                                        rng.UniformDouble(0, 5)});
      (void)added;  // duplicates rejected; fine
    }
    g.Finalize();
    NodeId s = static_cast<NodeId>(rng.Uniform(n));
    for (int ci = 0; ci < 2; ++ci) {
      auto dij = ShortestPathCosts(g, ci, Location::AtNode(s));
      auto bf = BellmanFord(g, ci, s);
      for (int v = 0; v < n; ++v) {
        EXPECT_NEAR(dij[v], bf[v], 1e-9) << "iter " << iter << " node " << v;
      }
    }
  }
}

TEST(DijkstraTest, UnreachableNodesAreInfinite) {
  MultiCostGraph g(1);
  g.AddNode(0, 0);
  g.AddNode(1, 0);
  g.AddNode(2, 0);
  ASSERT_TRUE(g.AddEdge(0, 1, CostVector{1}).ok());
  g.Finalize();
  auto dist = ShortestPathCosts(g, 0, Location::AtNode(0));
  EXPECT_EQ(dist[2], kInfCost);
}

TEST(DijkstraTest, ZeroWeightEdges) {
  MultiCostGraph g(1);
  g.AddNode(0, 0);
  g.AddNode(1, 0);
  g.AddNode(2, 0);
  ASSERT_TRUE(g.AddEdge(0, 1, CostVector{0}).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, CostVector{2}).ok());
  g.Finalize();
  auto dist = ShortestPathCosts(g, 0, Location::AtNode(0));
  EXPECT_DOUBLE_EQ(dist[1], 0.0);
  EXPECT_DOUBLE_EQ(dist[2], 2.0);
}

TEST(FacilityCostTest, MinOverBothEndpointsAndDirect) {
  MultiCostGraph g = test::TinyGraph();
  graph::FacilitySet facs = test::TinyFacilities(g);
  // Facility 0 on edge (1,2) frac 0.5, cost-0 weight 2.
  Location q = Location::AtNode(0);
  auto dist = ShortestPathCosts(g, 0, q);
  double expected = std::min(dist[1] + 0.5 * 2.0, dist[2] + 0.5 * 2.0);
  EXPECT_DOUBLE_EQ(FacilityCost(g, dist, 0, q, facs[0]), expected);

  // Query on the facility's own edge: direct along-edge route applies.
  Location q2 = Location::OnEdge(EdgeKey(1, 2), 0.25);
  auto dist2 = ShortestPathCosts(g, 0, q2);
  double direct = std::fabs(0.25 - 0.5) * 2.0;
  EXPECT_DOUBLE_EQ(FacilityCost(g, dist2, 0, q2, facs[0]), direct);
}

TEST(FacilityCostTest, QueryExactlyOnFacility) {
  MultiCostGraph g = test::TinyGraph();
  graph::FacilitySet facs = test::TinyFacilities(g);
  Location q = Location::OnEdge(EdgeKey(1, 2), 0.5);
  auto dist = ShortestPathCosts(g, 0, q);
  EXPECT_DOUBLE_EQ(FacilityCost(g, dist, 0, q, facs[0]), 0.0);
}

TEST(AllFacilityCostsTest, MatchesPerCostComputation) {
  MultiCostGraph g = test::TinyGraph();
  graph::FacilitySet facs = test::TinyFacilities(g);
  Location q = Location::OnEdge(EdgeKey(4, 5), 0.5);
  auto all = AllFacilityCosts(g, facs, q);
  ASSERT_EQ(all.size(), facs.size());
  for (int ci = 0; ci < 2; ++ci) {
    auto dist = ShortestPathCosts(g, ci, q);
    for (graph::FacilityId f = 0; f < facs.size(); ++f) {
      EXPECT_DOUBLE_EQ(all[f][ci], FacilityCost(g, dist, ci, q, facs[f]));
    }
  }
}

TEST(ShortestPathTest, ReconstructsPath) {
  MultiCostGraph g = test::TinyGraph();
  auto path = ShortestPath(g, 0, 0, 8).value();
  // Cost-0 shortest 0->8: 0-3-4-7-8 = 1+2+1+3 = 7.
  EXPECT_DOUBLE_EQ(path.cost, 7.0);
  ASSERT_GE(path.nodes.size(), 2u);
  EXPECT_EQ(path.nodes.front(), 0u);
  EXPECT_EQ(path.nodes.back(), 8u);
  // Consecutive nodes must be adjacent and sum to the cost.
  double sum = 0;
  for (size_t i = 1; i < path.nodes.size(); ++i) {
    auto e = g.FindEdge(path.nodes[i - 1], path.nodes[i]);
    ASSERT_TRUE(e.ok());
    sum += g.edge(e.value()).w[0];
  }
  EXPECT_DOUBLE_EQ(sum, path.cost);
}

TEST(ShortestPathTest, SourceEqualsTarget) {
  MultiCostGraph g = test::TinyGraph();
  auto path = ShortestPath(g, 0, 3, 3).value();
  EXPECT_DOUBLE_EQ(path.cost, 0.0);
  ASSERT_EQ(path.nodes.size(), 1u);
  EXPECT_EQ(path.nodes[0], 3u);
}

TEST(ShortestPathTest, UnreachableIsNotFound) {
  MultiCostGraph g(1);
  g.AddNode(0, 0);
  g.AddNode(1, 0);
  g.Finalize();
  EXPECT_EQ(ShortestPath(g, 0, 0, 1).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ShortestPath(g, 0, 0, 5).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mcn::expand
