#include <gtest/gtest.h>

#include <sstream>

#include "mcn/io/dimacs.h"
#include "test_util.h"

namespace mcn::io {
namespace {

TEST(DimacsTest, GraphRoundTrip) {
  graph::MultiCostGraph g = test::TinyGraph();
  std::stringstream ss;
  ASSERT_TRUE(WriteGraph(ss, g).ok());
  auto back = ReadGraph(ss);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_nodes(), g.num_nodes());
  EXPECT_EQ(back->num_edges(), g.num_edges());
  EXPECT_EQ(back->num_costs(), g.num_costs());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(back->x(v), g.x(v));
    EXPECT_DOUBLE_EQ(back->y(v), g.y(v));
  }
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& orig = g.edge(e);
    auto found = back->FindEdge(orig.u, orig.v);
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(back->edge(found.value()).w, orig.w);
  }
}

TEST(DimacsTest, FacilityRoundTrip) {
  graph::MultiCostGraph g = test::TinyGraph();
  graph::FacilitySet facs = test::TinyFacilities(g);
  std::stringstream ss;
  ASSERT_TRUE(WriteFacilities(ss, g, facs).ok());
  auto back = ReadFacilities(ss, g);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), facs.size());
  for (graph::FacilityId f = 0; f < facs.size(); ++f) {
    EXPECT_EQ((*back)[f].edge, facs[f].edge);
    EXPECT_DOUBLE_EQ((*back)[f].frac, facs[f].frac);
  }
}

TEST(DimacsTest, CommentsAndBlankLinesIgnored) {
  std::stringstream ss;
  ss << "c a comment\n\np mcn 2 1 2\nc another\nv 1 0.5 0.5\n"
     << "a 1 2 3.5 4.5\n";
  auto g = ReadGraph(ss);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_nodes(), 2u);
  EXPECT_EQ(g->num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g->edge(0).w[1], 4.5);
}

TEST(DimacsTest, ParseErrors) {
  {
    std::stringstream ss("a 1 2 3\n");  // edge before header
    EXPECT_FALSE(ReadGraph(ss).ok());
  }
  {
    std::stringstream ss("p mcn 2 2 1\na 1 2 3\n");  // count mismatch
    EXPECT_FALSE(ReadGraph(ss).ok());
  }
  {
    std::stringstream ss("p spx 2 1 1\n");  // wrong format tag
    EXPECT_FALSE(ReadGraph(ss).ok());
  }
  {
    std::stringstream ss("p mcn 2 1 1\na 1 5 3\n");  // node out of range
    EXPECT_FALSE(ReadGraph(ss).ok());
  }
  {
    std::stringstream ss("p mcn 2 1 2\na 1 2 3\n");  // missing cost
    EXPECT_FALSE(ReadGraph(ss).ok());
  }
  {
    std::stringstream ss("x nonsense\n");
    EXPECT_FALSE(ReadGraph(ss).ok());
  }
}

TEST(DimacsTest, FacilityParseErrors) {
  graph::MultiCostGraph g = test::TinyGraph();
  {
    std::stringstream ss("f 1 9 0.5\n");  // no such edge (0-8)
    EXPECT_FALSE(ReadFacilities(ss, g).ok());
  }
  {
    std::stringstream ss("f 1 2 1.5\n");  // frac out of range
    EXPECT_FALSE(ReadFacilities(ss, g).ok());
  }
  {
    std::stringstream ss("g 1 2 0.5\n");  // wrong kind
    EXPECT_FALSE(ReadFacilities(ss, g).ok());
  }
}

TEST(DimacsTest, FileRoundTrip) {
  graph::MultiCostGraph g = test::TinyGraph();
  graph::FacilitySet facs = test::TinyFacilities(g);
  std::string gpath = ::testing::TempDir() + "/mcn_test_graph.gr";
  std::string fpath = ::testing::TempDir() + "/mcn_test_facs.fac";
  ASSERT_TRUE(WriteGraphToFile(gpath, g).ok());
  ASSERT_TRUE(WriteFacilitiesToFile(fpath, g, facs).ok());
  auto g2 = ReadGraphFromFile(gpath);
  ASSERT_TRUE(g2.ok());
  auto f2 = ReadFacilitiesFromFile(fpath, *g2);
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(f2->size(), facs.size());
  EXPECT_FALSE(ReadGraphFromFile("/nonexistent/path.gr").ok());
}

TEST(DimacsTest, GeneratedNetworkRoundTripPreservesQueries) {
  // End-to-end: generate, export, re-import, verify the graph is identical
  // enough that shortest-path costs agree.
  test::SmallConfig config;
  config.nodes = 200;
  config.edges = 260;
  config.facilities = 20;
  auto instance = test::MakeSmallInstance(config).value();
  std::stringstream gs, fs;
  ASSERT_TRUE(WriteGraph(gs, instance->graph).ok());
  ASSERT_TRUE(WriteFacilities(fs, instance->graph, instance->facilities)
                  .ok());
  auto g2 = ReadGraph(gs).value();
  auto f2 = ReadFacilities(fs, g2).value();

  graph::Location q = graph::Location::AtNode(0);
  auto a = expand::AllFacilityCosts(instance->graph, instance->facilities,
                                    q);
  auto b = expand::AllFacilityCosts(g2, f2, q);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].ApproxEquals(b[i], 1e-9));
  }
}

}  // namespace
}  // namespace mcn::io
