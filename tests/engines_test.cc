#include <gtest/gtest.h>

#include <vector>

#include "mcn/expand/engines.h"
#include "test_util.h"

namespace mcn::expand {
namespace {

using graph::EdgeKey;
using graph::Location;

struct Pop {
  int cost_index;
  graph::FacilityId facility;
  double cost;
};

/// Round-robin drain of all NNs from an engine.
std::vector<Pop> DrainRoundRobin(NnEngine& engine) {
  std::vector<Pop> pops;
  int d = engine.num_costs();
  std::vector<bool> active(d, true);
  int remaining = d;
  int i = 0;
  while (remaining > 0) {
    if (active[i]) {
      auto nn = engine.NextNN(i).value();
      if (!nn.has_value()) {
        active[i] = false;
        --remaining;
      } else {
        pops.push_back({i, nn->facility, nn->cost});
      }
    }
    i = (i + 1) % d;
  }
  return pops;
}

class EnginesTest : public ::testing::Test {
 protected:
  EnginesTest()
      : fixture_(test::TinyGraph(),
                 test::TinyFacilities(test::TinyGraph()), 64) {}

  test::DiskFixture fixture_;
};

TEST_F(EnginesTest, LsaCeaAndMemProduceIdenticalPopSequences) {
  for (const Location& q :
       {Location::AtNode(0), Location::AtNode(8),
        Location::OnEdge(EdgeKey(4, 5), 0.3),
        Location::OnEdge(EdgeKey(1, 2), 0.5)}) {
    auto lsa = LsaEngine::Create(fixture_.reader.get(), q).value();
    auto cea = CeaEngine::Create(fixture_.reader.get(), q).value();
    auto mem = MemEngine::Create(&fixture_.graph, &fixture_.facilities, q)
                   .value();
    auto pops_lsa = DrainRoundRobin(*lsa);
    auto pops_cea = DrainRoundRobin(*cea);
    auto pops_mem = DrainRoundRobin(*mem);
    ASSERT_EQ(pops_lsa.size(), pops_cea.size());
    ASSERT_EQ(pops_lsa.size(), pops_mem.size());
    for (size_t i = 0; i < pops_lsa.size(); ++i) {
      EXPECT_EQ(pops_lsa[i].cost_index, pops_cea[i].cost_index);
      EXPECT_EQ(pops_lsa[i].facility, pops_cea[i].facility);
      EXPECT_DOUBLE_EQ(pops_lsa[i].cost, pops_cea[i].cost);
      EXPECT_EQ(pops_lsa[i].facility, pops_mem[i].facility);
      EXPECT_DOUBLE_EQ(pops_lsa[i].cost, pops_mem[i].cost);
    }
  }
}

TEST_F(EnginesTest, CeaFetchesEachRecordAtMostOnce) {
  Location q = Location::AtNode(0);
  auto cea = CeaEngine::Create(fixture_.reader.get(), q).value();
  DrainRoundRobin(*cea);
  const auto& stats = cea->fetch().stats();
  // Logical requests exceed underlying fetches (d=2 expansions), and
  // underlying fetches are bounded by the number of distinct records.
  EXPECT_GT(stats.adjacency_requests, stats.adjacency_fetches);
  EXPECT_LE(stats.adjacency_fetches, fixture_.graph.num_nodes());
  EXPECT_LE(stats.facility_fetches,
            fixture_.facilities.EdgesWithFacilities().size());
  // Full drain of d=2 expansions visits every node twice.
  EXPECT_EQ(stats.adjacency_requests, 2u * fixture_.graph.num_nodes());
  EXPECT_EQ(stats.adjacency_fetches, fixture_.graph.num_nodes());
}

TEST_F(EnginesTest, LsaFetchesEachRecordOncePerExpansion) {
  Location q = Location::AtNode(0);
  auto lsa = LsaEngine::Create(fixture_.reader.get(), q).value();
  DrainRoundRobin(*lsa);
  const auto& stats = lsa->fetch().stats();
  EXPECT_EQ(stats.adjacency_requests, stats.adjacency_fetches);
  EXPECT_EQ(stats.adjacency_fetches, 2u * fixture_.graph.num_nodes());
}

TEST_F(EnginesTest, MemEngineDoesNoIo) {
  Location q = Location::AtNode(0);
  fixture_.disk.ResetStats();
  auto mem =
      MemEngine::Create(&fixture_.graph, &fixture_.facilities, q).value();
  DrainRoundRobin(*mem);
  EXPECT_EQ(fixture_.disk.stats().page_reads, 0u);
}

TEST_F(EnginesTest, FrontierInfiniteAfterExhaustion) {
  auto mem = MemEngine::Create(&fixture_.graph, &fixture_.facilities,
                               Location::AtNode(0))
                 .value();
  DrainRoundRobin(*mem);
  for (int i = 0; i < mem->num_costs(); ++i) {
    EXPECT_TRUE(mem->Exhausted(i));
    EXPECT_EQ(mem->Frontier(i), std::numeric_limits<double>::infinity());
  }
}

TEST_F(EnginesTest, LocateFacilityEdgeAgreesAcrossEngines) {
  Location q = Location::AtNode(0);
  auto lsa = LsaEngine::Create(fixture_.reader.get(), q).value();
  auto mem =
      MemEngine::Create(&fixture_.graph, &fixture_.facilities, q).value();
  for (graph::FacilityId f = 0; f < fixture_.facilities.size(); ++f) {
    EXPECT_EQ(lsa->LocateFacilityEdge(f).value(),
              mem->LocateFacilityEdge(f).value());
  }
  EXPECT_FALSE(mem->LocateFacilityEdge(999).ok());
}

TEST_F(EnginesTest, MakeEngineFactory) {
  Location q = Location::AtNode(4);
  auto lsa = MakeEngine(EngineKind::kLsa, fixture_.reader.get(), q).value();
  auto cea = MakeEngine(EngineKind::kCea, fixture_.reader.get(), q).value();
  EXPECT_EQ(lsa->num_costs(), 2);
  EXPECT_EQ(cea->num_costs(), 2);
}

TEST_F(EnginesTest, InvalidSeedLocations) {
  EXPECT_FALSE(LsaEngine::Create(fixture_.reader.get(),
                                 Location::AtNode(12345))
                   .ok());
  EXPECT_FALSE(LsaEngine::Create(fixture_.reader.get(),
                                 Location::OnEdge(EdgeKey(0, 8), 0.5))
                   .ok());  // no such edge
}

}  // namespace
}  // namespace mcn::expand
