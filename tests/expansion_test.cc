#include <gtest/gtest.h>

#include <algorithm>

#include "mcn/expand/dijkstra.h"
#include "mcn/expand/fetch_provider.h"
#include "mcn/expand/single_expansion.h"
#include "test_util.h"

namespace mcn::expand {
namespace {

using graph::EdgeKey;
using graph::Location;

class ExpansionTest : public ::testing::Test {
 protected:
  ExpansionTest()
      : fixture_(test::TinyGraph(),
                 test::TinyFacilities(test::TinyGraph()), 64) {}

  struct FacilityOnEdgeOrder {
    graph::FacilityId id;
    double cost;
  };

  /// All facility NNs in pop order for one cost type.
  std::vector<FacilityOnEdgeOrder> DrainNNs(int ci, const Location& q,
                                            FetchProvider* fetch) {
    SingleExpansion exp(ci, fetch);
    SeedExpansion(exp, ci, q, fetch);
    std::vector<FacilityOnEdgeOrder> result;
    for (;;) {
      auto ev = exp.Step().value();
      if (ev.type == ExpansionEvent::Type::kExhausted) break;
      if (ev.type == ExpansionEvent::Type::kFacility) {
        result.push_back({ev.id, ev.cost});
      }
    }
    return result;
  }

  static void SeedExpansion(SingleExpansion& exp, int ci, const Location& q,
                            FetchProvider* fetch) {
    auto seed = fetch->GetSeedInfo(q).value();
    if (q.is_node()) {
      exp.SeedNode(q.node(), 0.0);
    } else {
      double w = seed.edge_costs[ci];
      exp.SeedNode(q.edge().u, q.frac() * w);
      exp.SeedNode(q.edge().v, (1.0 - q.frac()) * w);
      for (const auto& fe : seed.facilities) {
        exp.SeedFacility(fe.facility, std::fabs(q.frac() - fe.frac) * w);
      }
    }
  }

  test::DiskFixture fixture_;
};

TEST_F(ExpansionTest, NnOrderMatchesOracleForBothCosts) {
  Location q = Location::AtNode(0);
  DirectFetch fetch(fixture_.reader.get());
  for (int ci = 0; ci < 2; ++ci) {
    auto nns = DrainNNs(ci, q, &fetch);
    // Oracle: exact per-cost facility distances, sorted.
    auto dist = ShortestPathCosts(fixture_.graph, ci, q);
    std::vector<std::pair<double, graph::FacilityId>> expected;
    for (graph::FacilityId f = 0; f < fixture_.facilities.size(); ++f) {
      double c =
          FacilityCost(fixture_.graph, dist, ci, q, fixture_.facilities[f]);
      if (c < kInfCost) expected.push_back({c, f});
    }
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(nns.size(), expected.size());
    for (size_t i = 0; i < nns.size(); ++i) {
      EXPECT_NEAR(nns[i].cost, expected[i].first, 1e-9) << "ci=" << ci;
    }
    // Costs must be non-decreasing (incremental NN property).
    for (size_t i = 1; i < nns.size(); ++i) {
      EXPECT_GE(nns[i].cost, nns[i - 1].cost);
    }
  }
}

TEST_F(ExpansionTest, QueryOnEdgeFindsSameEdgeFacilityDirectly) {
  // Facility 0 sits on edge (1,2) frac 0.5; query on the same edge.
  Location q = Location::OnEdge(EdgeKey(1, 2), 0.4);
  DirectFetch fetch(fixture_.reader.get());
  auto nns = DrainNNs(0, q, &fetch);
  ASSERT_FALSE(nns.empty());
  EXPECT_EQ(nns[0].id, 0u);
  EXPECT_NEAR(nns[0].cost, 0.1 * 2.0, 1e-12);  // |0.4-0.5| * w0(1,2)=2
}

TEST_F(ExpansionTest, EachFacilityReportedOnce) {
  Location q = Location::AtNode(4);
  DirectFetch fetch(fixture_.reader.get());
  auto nns = DrainNNs(1, q, &fetch);
  std::vector<graph::FacilityId> ids;
  for (auto& nn : nns) ids.push_back(nn.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
  EXPECT_EQ(ids.size(), fixture_.facilities.size());
}

TEST_F(ExpansionTest, FrontierKeyIsMonotoneLowerBound) {
  Location q = Location::AtNode(0);
  DirectFetch fetch(fixture_.reader.get());
  SingleExpansion exp(0, &fetch);
  SeedExpansion(exp, 0, q, &fetch);
  double last_event = 0.0;
  for (;;) {
    double frontier = exp.FrontierKey();
    auto ev = exp.Step().value();
    if (ev.type == ExpansionEvent::Type::kExhausted) {
      // The heap may have held only stale entries before this step, so the
      // pre-step frontier need not be infinite; afterwards it must be.
      EXPECT_TRUE(exp.exhausted());
      EXPECT_EQ(exp.FrontierKey(), kInfCost);
      break;
    }
    // The frontier before the step lower-bounds the event cost, and events
    // are non-decreasing.
    EXPECT_LE(frontier, ev.cost + 1e-12);
    EXPECT_GE(ev.cost, last_event - 1e-12);
    last_event = ev.cost;
  }
}

TEST_F(ExpansionTest, FilterRestrictsToCandidateEdges) {
  Location q = Location::AtNode(0);
  DirectFetch fetch(fixture_.reader.get());

  // Only facility 2 (edge (7,8)) is a candidate.
  FacilityFilter filter;
  filter.Add(EdgeKey(7, 8), 2);

  SingleExpansion exp(0, &fetch);
  exp.set_filter(&filter);
  SeedExpansion(exp, 0, q, &fetch);
  std::vector<graph::FacilityId> popped;
  for (;;) {
    auto ev = exp.Step().value();
    if (ev.type == ExpansionEvent::Type::kExhausted) break;
    if (ev.type == ExpansionEvent::Type::kFacility) popped.push_back(ev.id);
  }
  ASSERT_EQ(popped.size(), 1u);
  EXPECT_EQ(popped[0], 2u);
}

TEST_F(ExpansionTest, FilterInstalledMidwayIgnoresNewFacilities) {
  Location q = Location::AtNode(0);
  DirectFetch fetch(fixture_.reader.get());
  SingleExpansion exp(0, &fetch);
  SeedExpansion(exp, 0, q, &fetch);
  // First facility pops normally.
  ExpansionEvent first;
  do {
    first = exp.Step().value();
  } while (first.type == ExpansionEvent::Type::kNode);
  ASSERT_EQ(first.type, ExpansionEvent::Type::kFacility);

  // Empty filter: nothing new may be en-heaped, but already-en-heaped
  // facilities may still pop.
  FacilityFilter empty;
  exp.set_filter(&empty);
  int facilities_after = 0;
  for (;;) {
    auto ev = exp.Step().value();
    if (ev.type == ExpansionEvent::Type::kExhausted) break;
    if (ev.type == ExpansionEvent::Type::kFacility) ++facilities_after;
  }
  // All remaining pops come from pre-filter en-heaping; with the tiny graph
  // everything near node 0 was already en-heaped, so this just must not
  // exceed the total.
  EXPECT_LE(facilities_after,
            static_cast<int>(fixture_.facilities.size()) - 1);
}

TEST(FacilityFilterTest, AddRemoveSemantics) {
  FacilityFilter filter;
  EXPECT_TRUE(filter.empty());
  filter.Add(EdgeKey(1, 2), 10);
  filter.Add(EdgeKey(1, 2), 11);
  filter.Add(EdgeKey(3, 4), 12);
  EXPECT_EQ(filter.num_facilities(), 3u);
  EXPECT_TRUE(filter.ContainsEdge(EdgeKey(2, 1)));
  EXPECT_TRUE(filter.Allows(EdgeKey(1, 2), 10));
  EXPECT_FALSE(filter.Allows(EdgeKey(1, 2), 12));

  EXPECT_TRUE(filter.Remove(10));
  EXPECT_FALSE(filter.Remove(10));  // already gone
  EXPECT_TRUE(filter.ContainsEdge(EdgeKey(1, 2)));  // 11 remains
  EXPECT_TRUE(filter.Remove(11));
  EXPECT_FALSE(filter.ContainsEdge(EdgeKey(1, 2)));
  EXPECT_TRUE(filter.Remove(12));
  EXPECT_TRUE(filter.empty());
}

TEST(FacilityFilterTest, DuplicateAddIsIdempotent) {
  FacilityFilter filter;
  filter.Add(EdgeKey(1, 2), 10);
  filter.Add(EdgeKey(1, 2), 10);
  EXPECT_EQ(filter.num_facilities(), 1u);
  EXPECT_TRUE(filter.Remove(10));
  EXPECT_TRUE(filter.empty());
}

}  // namespace
}  // namespace mcn::expand
