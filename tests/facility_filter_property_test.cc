// Property test for expand::FacilityFilter: random Add/Remove/Allows op
// sequences checked against a map-based oracle, exercising the swap-erase
// backfill paths (Remove moves the row tail into the vacated slot and must
// re-point the moved facility's back-reference) and the re-add semantics
// (same edge = no-op, different edge = programmer error, DCHECK death).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "mcn/common/random.h"
#include "mcn/expand/single_expansion.h"
#include "test_util.h"

namespace mcn::expand {
namespace {

graph::EdgeKey EdgeOf(uint32_t index) {
  // Distinct canonical edges: (index, index + 1 + index % 3).
  return graph::EdgeKey(index, index + 1 + index % 3);
}

TEST(FacilityFilterPropertyTest, RandomOpsMatchMapOracle) {
  const uint64_t seed = test::AnnounceSeed("facility_filter_property_test");
  for (int round = 0; round < 20; ++round) {
    Random rng(test::DeriveSeed(seed, round));
    const uint32_t num_facilities = 1 + static_cast<uint32_t>(rng.Uniform(64));
    const uint32_t num_edges = 1 + static_cast<uint32_t>(rng.Uniform(24));

    FacilityFilter filter;
    // Oracle: facility -> its (unique) edge, while present.
    std::map<graph::FacilityId, uint32_t> oracle;
    // A facility's edge is fixed at first Add (re-adding under another
    // edge is the DCHECK'd programmer error, tested separately below).
    std::vector<uint32_t> home_edge(num_facilities);
    for (uint32_t f = 0; f < num_facilities; ++f) {
      home_edge[f] = static_cast<uint32_t>(rng.Uniform(num_edges));
    }

    for (int op = 0; op < 600; ++op) {
      graph::FacilityId f =
          static_cast<graph::FacilityId>(rng.Uniform(num_facilities));
      switch (rng.Uniform(4)) {
        case 0:
        case 1: {  // Add (possibly a present-facility no-op re-add)
          filter.Add(EdgeOf(home_edge[f]), f);
          oracle.emplace(f, home_edge[f]);
          break;
        }
        case 2: {  // Remove (possibly absent)
          bool removed = filter.Remove(f);
          EXPECT_EQ(removed, oracle.erase(f) > 0);
          break;
        }
        default: {  // point query
          uint32_t e = static_cast<uint32_t>(rng.Uniform(num_edges));
          auto it = oracle.find(f);
          bool expect_allows = it != oracle.end() && it->second == e;
          EXPECT_EQ(filter.Allows(EdgeOf(e), f), expect_allows);
          break;
        }
      }

      // Global invariants after every op.
      ASSERT_EQ(filter.num_facilities(), oracle.size());
      ASSERT_EQ(filter.empty(), oracle.empty());
    }

    // Exhaustive final cross-check: membership per (edge, facility), and
    // ContainsEdge against the set of edges with live facilities.
    std::set<uint32_t> live_edges;
    for (const auto& [f, e] : oracle) live_edges.insert(e);
    for (uint32_t e = 0; e < num_edges; ++e) {
      SCOPED_TRACE("round " + std::to_string(round) + " edge " +
                   std::to_string(e) + " | rerun: MCN_TEST_SEED=" +
                   std::to_string(seed) +
                   " ctest -R facility_filter_property_test");
      EXPECT_EQ(filter.ContainsEdge(EdgeOf(e)), live_edges.count(e) > 0);
      for (uint32_t f = 0; f < num_facilities; ++f) {
        auto it = oracle.find(f);
        bool expect_allows = it != oracle.end() && it->second == e;
        EXPECT_EQ(filter.Allows(EdgeOf(e), f), expect_allows);
      }
    }
  }
}

TEST(FacilityFilterPropertyTest, RemoveBackfillsRowTail) {
  // Deterministic swap-erase scenario: three facilities on one edge;
  // removing the middle one backfills with the tail, whose back-reference
  // must follow (a later Remove of the moved facility must still work).
  FacilityFilter filter;
  graph::EdgeKey edge(5, 9);
  filter.Add(edge, 10);
  filter.Add(edge, 11);
  filter.Add(edge, 12);
  ASSERT_TRUE(filter.Remove(11));
  EXPECT_TRUE(filter.Allows(edge, 10));
  EXPECT_FALSE(filter.Allows(edge, 11));
  EXPECT_TRUE(filter.Allows(edge, 12));  // moved into slot 1
  ASSERT_TRUE(filter.Remove(12));        // must find it at its new slot
  EXPECT_TRUE(filter.ContainsEdge(edge));
  ASSERT_TRUE(filter.Remove(10));
  EXPECT_FALSE(filter.ContainsEdge(edge));
  EXPECT_TRUE(filter.empty());

  // An emptied row may be refilled.
  filter.Add(edge, 11);
  EXPECT_TRUE(filter.Allows(edge, 11));
  EXPECT_EQ(filter.num_facilities(), 1u);
}

#ifndef NDEBUG
TEST(FacilityFilterDeathTest, ConflictingReAddTripsDcheck) {
  FacilityFilter filter;
  filter.Add(graph::EdgeKey(1, 2), 7);
  // Same edge: documented no-op.
  filter.Add(graph::EdgeKey(1, 2), 7);
  EXPECT_EQ(filter.num_facilities(), 1u);
  // Different edge: a facility lies on exactly one edge — programmer
  // error, DCHECK abort in debug builds.
  EXPECT_DEATH(filter.Add(graph::EdgeKey(3, 4), 7), "MCN_CHECK failed");
}
#endif  // NDEBUG

}  // namespace
}  // namespace mcn::expand
