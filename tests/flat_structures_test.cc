// Unit tests for the flat hot-path data structures introduced by the
// dense-store refactor: FlatU64Map (open addressing + backward-shift
// deletion), DaryHeap (ordering parity with std::priority_queue),
// FacilityFilter (O(1) swap-erase removal) and CandidateStore list
// maintenance.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <random>
#include <unordered_map>
#include <vector>

#include "mcn/algo/candidate_store.h"
#include "mcn/common/flat_u64_map.h"
#include "mcn/expand/dary_heap.h"
#include "mcn/expand/dijkstra.h"
#include "mcn/expand/single_expansion.h"

namespace mcn {
namespace {

TEST(FlatU64MapTest, InsertFindEraseAgainstReference) {
  FlatU64Map map(16);
  std::unordered_map<uint64_t, uint32_t> ref;
  std::mt19937_64 rng(7);
  // Small key range forces dense probe chains and many collisions.
  for (int step = 0; step < 20000; ++step) {
    uint64_t key = rng() % 512;
    if (rng() % 3 != 0) {
      if (ref.find(key) == ref.end()) {
        uint32_t value = static_cast<uint32_t>(rng() % 1000);
        map.Insert(key, value);
        ref[key] = value;
      }
    } else if (ref.find(key) != ref.end()) {
      map.Erase(key);
      ref.erase(key);
    }
    ASSERT_EQ(map.size(), ref.size());
  }
  for (uint64_t key = 0; key < 512; ++key) {
    auto it = ref.find(key);
    if (it == ref.end()) {
      EXPECT_EQ(map.Find(key), FlatU64Map::kNoValue) << key;
    } else {
      EXPECT_EQ(map.Find(key), it->second) << key;
    }
  }
}

TEST(FlatU64MapTest, GrowsPastInitialCapacity) {
  FlatU64Map map(16);
  for (uint64_t k = 0; k < 10000; ++k) map.Insert(k * 3 + 1, uint32_t(k));
  for (uint64_t k = 0; k < 10000; ++k) {
    ASSERT_EQ(map.Find(k * 3 + 1), uint32_t(k));
  }
}

TEST(DaryHeapTest, PopOrderMatchesPriorityQueue) {
  struct Item {
    double key;
    uint64_t id;
  };
  struct Before {
    bool operator()(const Item& a, const Item& b) const {
      if (a.key != b.key) return a.key < b.key;
      return a.id < b.id;
    }
  };
  struct RefGreater {
    bool operator()(const Item& a, const Item& b) const {
      if (a.key != b.key) return a.key > b.key;
      return a.id > b.id;
    }
  };
  expand::DaryHeap<Item, Before> heap;
  std::priority_queue<Item, std::vector<Item>, RefGreater> ref;
  std::mt19937_64 rng(13);
  for (int step = 0; step < 50000; ++step) {
    if (ref.empty() || rng() % 5 < 3) {
      // Duplicate keys are common in expansions: draw from a small range.
      Item item{double(rng() % 97), rng() % 100000};
      heap.push(item);
      ref.push(item);
    } else {
      ASSERT_EQ(heap.top().key, ref.top().key);
      ASSERT_EQ(heap.top().id, ref.top().id);
      heap.pop();
      ref.pop();
    }
    ASSERT_EQ(heap.size(), ref.size());
  }
  while (!ref.empty()) {
    ASSERT_EQ(heap.top().id, ref.top().id);
    heap.pop();
    ref.pop();
  }
  EXPECT_TRUE(heap.empty());
}

TEST(FacilityFilterTest, AddRemoveAllowsContains) {
  expand::FacilityFilter filter;
  graph::EdgeKey e1(1, 2);
  graph::EdgeKey e2(3, 4);
  filter.Add(e1, 10);
  filter.Add(e1, 11);
  filter.Add(e2, 12);
  filter.Add(e1, 10);  // benign re-add under the same edge
  EXPECT_EQ(filter.num_facilities(), 3u);
  EXPECT_TRUE(filter.ContainsEdge(e1));
  EXPECT_TRUE(filter.Allows(e1, 10));
  EXPECT_TRUE(filter.Allows(e1, 11));
  EXPECT_FALSE(filter.Allows(e2, 10));
  EXPECT_FALSE(filter.Allows(e1, 12));

  // Swap-erase removal: remove the front element of e1's row first.
  EXPECT_TRUE(filter.Remove(10));
  EXPECT_FALSE(filter.Remove(10));  // already gone
  EXPECT_TRUE(filter.ContainsEdge(e1));
  EXPECT_TRUE(filter.Allows(e1, 11));
  EXPECT_TRUE(filter.Remove(11));
  EXPECT_FALSE(filter.ContainsEdge(e1));  // row emptied
  EXPECT_TRUE(filter.ContainsEdge(e2));
  EXPECT_FALSE(filter.Remove(99));  // never added
  EXPECT_TRUE(filter.Remove(12));
  EXPECT_TRUE(filter.empty());

  // Rows refill after emptying.
  filter.Add(e1, 11);
  EXPECT_TRUE(filter.ContainsEdge(e1));
  EXPECT_TRUE(filter.Allows(e1, 11));
}

TEST(CandidateStoreTest, AcquireAndListMaintenance) {
  algo::CandidateStore store(100, 3, expand::kInfCost);
  bool created = false;
  uint32_t a = store.Acquire(7, &created);
  EXPECT_TRUE(created);
  uint32_t again = store.Acquire(7, &created);
  EXPECT_FALSE(created);
  EXPECT_EQ(a, again);
  EXPECT_EQ(store.Find(8), algo::CandidateStore::kNoSlot);
  uint32_t b = store.Acquire(8, &created);
  uint32_t c = store.Acquire(9, &created);
  EXPECT_EQ(store.size(), 3u);

  store.SetCost(a, 1, 5.0);
  EXPECT_TRUE(store.slot(a).Knows(1));
  EXPECT_FALSE(store.slot(a).Knows(0));
  EXPECT_EQ(store.slot(a).known_count, 1);
  EXPECT_EQ(store.costs(a)[1], 5.0);
  EXPECT_EQ(store.costs(a)[0], expand::kInfCost);

  store.AddCandidate(a);
  store.AddCandidate(b);
  store.AddCandidate(c);
  EXPECT_EQ(store.num_candidates(), 3);
  store.RemoveCandidate(a);  // back (c) backfills a's position
  EXPECT_EQ(store.num_candidates(), 2);
  std::vector<uint32_t> live = store.candidates();
  std::sort(live.begin(), live.end());
  EXPECT_EQ(live, (std::vector<uint32_t>{b, c}));
  store.RemoveCandidate(c);
  store.RemoveCandidate(b);
  EXPECT_EQ(store.num_candidates(), 0);

  store.AddSkyUnpinned(b);
  EXPECT_EQ(store.sky_unpinned(), std::vector<uint32_t>{b});
  store.RemoveSkyUnpinned(b);
  EXPECT_TRUE(store.sky_unpinned().empty());
}

}  // namespace
}  // namespace mcn
