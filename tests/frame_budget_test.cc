// Regression test for the frame-budget split across shard pools. The old
// FramesPerShard floored the division, silently dropping up to K-1
// remainder frames of a non-divisible budget — a worker configured for
// 10 frames over K=4 shards ran with 8. SplitFramesAcrossShards conserves
// the budget exactly: sum == total for every total >= K, with the one-frame
// floor (each pool must be usable) as the only case where the sum exceeds
// the budget. The reader-level test pins the capacities a
// ShardedNetworkReader actually builds, not just the arithmetic.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mcn/shard/sharded_builder.h"
#include "mcn/shard/sharded_reader.h"
#include "mcn/shard/sharded_storage.h"
#include "test_util.h"

namespace mcn::shard {
namespace {

TEST(FrameBudgetTest, SplitConservesTotalFrames) {
  for (int k = 1; k <= 4; ++k) {
    // Non-divisible budgets are the regression: every remainder class,
    // plus divisible anchors.
    for (size_t total : {1u, 2u, 3u, 5u, 7u, 10u, 11u, 13u, 64u, 100u}) {
      const std::vector<size_t> frames = SplitFramesAcrossShards(total, k);
      ASSERT_EQ(frames.size(), static_cast<size_t>(k));
      const size_t sum =
          std::accumulate(frames.begin(), frames.end(), size_t{0});
      if (total >= static_cast<size_t>(k)) {
        EXPECT_EQ(sum, total) << "total=" << total << " k=" << k;
      } else {
        // One-frame floor: K small pools, never an unusable zero-frame one.
        EXPECT_EQ(sum, static_cast<size_t>(k))
            << "total=" << total << " k=" << k;
      }
      // The split is balanced: shares differ by at most one frame, larger
      // shares first (deterministic across runs and call sites).
      for (size_t s = 1; s < frames.size(); ++s) {
        EXPECT_LE(frames[s], frames[s - 1]);
        EXPECT_LE(frames[0] - frames[s], size_t{1});
      }
    }
  }
  // Zero budget stays zero (the unbounded-pool convention downstream).
  for (int k = 1; k <= 4; ++k) {
    for (size_t f : SplitFramesAcrossShards(0, k)) EXPECT_EQ(f, 0u);
  }
}

TEST(FrameBudgetTest, OldFloorDivisionDocumentedAsLossy) {
  // The deprecated helper keeps its old behavior (callers that still want
  // a uniform per-shard count get it unchanged) — this pins what the new
  // split fixes: 11 frames over 4 shards lost 3 of them.
  EXPECT_EQ(FramesPerShard(11, 4), 2u);
  const std::vector<size_t> fixed = SplitFramesAcrossShards(11, 4);
  EXPECT_EQ(std::accumulate(fixed.begin(), fixed.end(), size_t{0}), 11u);
}

TEST(FrameBudgetTest, ReaderPoolsMatchTheSplit) {
  const uint64_t base = test::AnnounceSeed("frame_budget_test");
  test::SmallConfig config;
  config.seed = base;
  auto instance = test::MakeSmallInstance(config).value();
  for (int k : {1, 2, 3, 4}) {
    GridTilePartitioner partitioner;
    auto part = partitioner.Build(instance->graph, k).value();
    ShardedStorage storage(std::move(part));
    const ShardedNetworkFiles files =
        BuildShardedNetwork(&storage, instance->graph, instance->facilities)
            .value();
    for (size_t total : {5u, 7u, 11u, 64u}) {
      const std::vector<size_t> frames = SplitFramesAcrossShards(total, k);
      ShardedNetworkReader reader(&storage, files, frames);
      size_t built = 0;
      for (int s = 0; s < k; ++s) {
        built += reader.shard_pool(static_cast<ShardId>(s)).capacity();
      }
      const size_t expected =
          total >= static_cast<size_t>(k) ? total : static_cast<size_t>(k);
      EXPECT_EQ(built, expected) << "total=" << total << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace mcn::shard
