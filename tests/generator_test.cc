#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "mcn/common/random.h"
#include "mcn/gen/cost_generator.h"
#include "mcn/gen/facility_generator.h"
#include "mcn/gen/road_network_generator.h"
#include "mcn/gen/workload.h"

namespace mcn::gen {
namespace {

bool IsConnected(const Topology& topo) {
  uint32_t n = topo.num_nodes();
  std::vector<std::vector<uint32_t>> adj(n);
  for (auto [u, v] : topo.edges) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  std::vector<bool> seen(n, false);
  std::vector<uint32_t> stack{0};
  seen[0] = true;
  uint32_t count = 1;
  while (!stack.empty()) {
    uint32_t v = stack.back();
    stack.pop_back();
    for (uint32_t w : adj[v]) {
      if (!seen[w]) {
        seen[w] = true;
        ++count;
        stack.push_back(w);
      }
    }
  }
  return count == n;
}

TEST(RoadNetworkGeneratorTest, ExactCountsAndConnectivity) {
  for (auto [n, e] : std::vector<std::pair<uint32_t, uint32_t>>{
           {200, 255}, {500, 640}, {1000, 1274}, {150, 149}}) {
    RoadNetworkOptions opts;
    opts.target_nodes = n;
    opts.target_edges = e;
    opts.seed = n + e;
    auto topo = GenerateRoadNetwork(opts);
    ASSERT_TRUE(topo.ok()) << topo.status().ToString();
    EXPECT_EQ(topo->num_nodes(), n);
    EXPECT_EQ(topo->num_edges(), e);
    EXPECT_TRUE(IsConnected(*topo));
  }
}

TEST(RoadNetworkGeneratorTest, DeterministicForSeed) {
  RoadNetworkOptions opts;
  opts.target_nodes = 300;
  opts.target_edges = 380;
  opts.seed = 99;
  auto a = GenerateRoadNetwork(opts).value();
  auto b = GenerateRoadNetwork(opts).value();
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.coords, b.coords);
}

TEST(RoadNetworkGeneratorTest, CoordinatesInUnitSquareish) {
  RoadNetworkOptions opts;
  opts.target_nodes = 400;
  opts.target_edges = 500;
  auto topo = GenerateRoadNetwork(opts).value();
  for (auto [x, y] : topo.coords) {
    EXPECT_GT(x, -0.5);
    EXPECT_LT(x, 1.5);
    EXPECT_GT(y, -0.5);
    EXPECT_LT(y, 1.5);
  }
}

TEST(RoadNetworkGeneratorTest, RoadLikeDegreeDistribution) {
  RoadNetworkOptions opts;  // SF defaults scaled down
  opts.target_nodes = 17495;
  opts.target_edges = 22300;
  auto topo = GenerateRoadNetwork(opts).value();
  std::vector<int> degree(topo.num_nodes(), 0);
  for (auto [u, v] : topo.edges) {
    ++degree[u];
    ++degree[v];
  }
  int deg2 = 0, max_degree = 0;
  for (int d : degree) {
    if (d == 2) ++deg2;
    max_degree = std::max(max_degree, d);
  }
  // Road networks have a large share of degree-2 polyline nodes and small
  // maximum degree.
  EXPECT_GT(deg2, static_cast<int>(topo.num_nodes()) / 4);
  EXPECT_LE(max_degree, 8);
}

TEST(RoadNetworkGeneratorTest, RejectsInfeasibleRequests) {
  RoadNetworkOptions opts;
  opts.target_nodes = 2;
  EXPECT_FALSE(GenerateRoadNetwork(opts).ok());
  opts.target_nodes = 100;
  opts.target_edges = 50;  // below n-1
  EXPECT_FALSE(GenerateRoadNetwork(opts).ok());
  opts.target_edges = 500;  // way too dense for a road network
  EXPECT_FALSE(GenerateRoadNetwork(opts).ok());
}

TEST(CostGeneratorTest, ParseAndToString) {
  EXPECT_EQ(ParseCostDistribution("independent").value(),
            CostDistribution::kIndependent);
  EXPECT_EQ(ParseCostDistribution("anti").value(),
            CostDistribution::kAntiCorrelated);
  EXPECT_EQ(ParseCostDistribution("corr").value(),
            CostDistribution::kCorrelated);
  EXPECT_FALSE(ParseCostDistribution("bogus").ok());
  EXPECT_EQ(ToString(CostDistribution::kAntiCorrelated), "anti-correlated");
}

TEST(CostGeneratorTest, CostsPositiveAndScaleWithBase) {
  Random rng(4);
  for (CostDistribution dist :
       {CostDistribution::kIndependent, CostDistribution::kCorrelated,
        CostDistribution::kAntiCorrelated}) {
    for (int i = 0; i < 200; ++i) {
      graph::CostVector w = GenerateEdgeCosts(rng, dist, 4, 2.0);
      for (int j = 0; j < 4; ++j) {
        EXPECT_GT(w[j], 0.0);
        EXPECT_LT(w[j], 2.0 * 4.2);  // bounded by ~base * d
      }
    }
  }
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  double ma = std::accumulate(a.begin(), a.end(), 0.0) / a.size();
  double mb = std::accumulate(b.begin(), b.end(), 0.0) / b.size();
  double cov = 0, va = 0, vb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  return cov / std::sqrt(va * vb);
}

TEST(CostGeneratorTest, CorrelationStructureMatchesName) {
  Random rng(5);
  const int n = 4000;
  for (CostDistribution dist :
       {CostDistribution::kIndependent, CostDistribution::kCorrelated,
        CostDistribution::kAntiCorrelated}) {
    std::vector<double> c0, c1;
    for (int i = 0; i < n; ++i) {
      graph::CostVector w = GenerateEdgeCosts(rng, dist, 2, 1.0);
      c0.push_back(w[0]);
      c1.push_back(w[1]);
    }
    double r = PearsonCorrelation(c0, c1);
    switch (dist) {
      case CostDistribution::kIndependent:
        EXPECT_NEAR(r, 0.0, 0.1);
        break;
      case CostDistribution::kCorrelated:
        EXPECT_GT(r, 0.9);
        break;
      case CostDistribution::kAntiCorrelated:
        EXPECT_LT(r, -0.5);
        break;
    }
  }
}

TEST(CostGeneratorTest, BuildGraphFromTopology) {
  RoadNetworkOptions road;
  road.target_nodes = 300;
  road.target_edges = 380;
  auto topo = GenerateRoadNetwork(road).value();
  CostGenOptions costs;
  costs.num_costs = 3;
  auto g = BuildMultiCostGraph(topo, costs);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 300u);
  EXPECT_EQ(g->num_edges(), 380u);
  EXPECT_EQ(g->num_costs(), 3);
  EXPECT_TRUE(g->finalized());
}

TEST(FacilityGeneratorTest, CountAndClustering) {
  RoadNetworkOptions road;
  road.target_nodes = 2000;
  road.target_edges = 2548;
  auto topo = GenerateRoadNetwork(road).value();
  CostGenOptions cg;
  cg.num_costs = 2;
  auto g = BuildMultiCostGraph(topo, cg).value();

  FacilityGenOptions opts;
  opts.count = 500;
  opts.num_clusters = 3;
  opts.cluster_sigma = 0.03;
  auto facs = GenerateFacilities(g, opts).value();
  EXPECT_EQ(facs.size(), 500u);
  EXPECT_TRUE(facs.finalized());

  // Clustered: the average pairwise facility distance should be well below
  // the uniform expectation (~0.52 for the unit square).
  auto fac_xy = [&](graph::FacilityId f) {
    const graph::EdgeRecord& e = g.edge(facs[f].edge);
    double t = facs[f].frac;
    return std::pair<double, double>(
        g.x(e.u) + t * (g.x(e.v) - g.x(e.u)),
        g.y(e.u) + t * (g.y(e.v) - g.y(e.u)));
  };
  Random rng(1);
  double total = 0;
  const int samples = 2000;
  for (int i = 0; i < samples; ++i) {
    auto [x1, y1] = fac_xy(static_cast<graph::FacilityId>(
        rng.Uniform(facs.size())));
    auto [x2, y2] = fac_xy(static_cast<graph::FacilityId>(
        rng.Uniform(facs.size())));
    total += std::hypot(x1 - x2, y1 - y2);
  }
  EXPECT_LT(total / samples, 0.4);
}

TEST(FacilityGeneratorTest, InvalidOptions) {
  graph::MultiCostGraph g(1);
  g.AddNode(0, 0);
  g.Finalize();
  FacilityGenOptions opts;
  EXPECT_FALSE(GenerateFacilities(g, opts).ok());  // no edges
}

TEST(WorkloadTest, BuildInstanceEndToEnd) {
  ExperimentConfig config;
  config.nodes = 800;
  config.edges = 1020;
  config.facilities = 100;
  config.num_costs = 3;
  config.buffer_pct = 1.0;
  auto instance = BuildInstance(config).value();
  EXPECT_EQ(instance->graph.num_nodes(), 800u);
  EXPECT_EQ(instance->graph.num_edges(), 1020u);
  EXPECT_EQ(instance->facilities.size(), 100u);
  EXPECT_EQ(instance->files.num_costs, 3);
  EXPECT_GT(instance->files.total_pages, 0u);
  EXPECT_EQ(instance->pool->capacity(),
            BufferFrames(1.0, instance->files.total_pages));

  Random rng(3);
  graph::Location q = instance->RandomQueryLocation(rng);
  EXPECT_FALSE(q.is_node());
}

TEST(WorkloadTest, BufferFramesRounding) {
  EXPECT_EQ(BufferFrames(0.0, 10000), 0u);
  EXPECT_EQ(BufferFrames(1.0, 10000), 100u);
  EXPECT_EQ(BufferFrames(0.5, 10000), 50u);
  EXPECT_EQ(BufferFrames(2.0, 333), 7u);  // round(6.66)
}

TEST(WorkloadTest, ScaledConfig) {
  ExperimentConfig config;  // SF defaults
  ExperimentConfig half = config.Scaled(0.5);
  EXPECT_NEAR(half.nodes, config.nodes * 0.5, 1.0);
  EXPECT_NEAR(half.edges, config.edges * 0.5, 1.0);
  EXPECT_NEAR(half.facilities, config.facilities * 0.5, 1.0);
  ExperimentConfig tiny = config.Scaled(1e-9);
  EXPECT_GE(tiny.nodes, 64u);
  EXPECT_GE(tiny.edges, tiny.nodes + 16);
  EXPECT_FALSE(config.ToString().empty());
}

TEST(WorkloadTest, ResetIoStateClearsCounters) {
  ExperimentConfig config;
  config.nodes = 300;
  config.edges = 400;
  config.facilities = 40;
  auto instance = BuildInstance(config).value();
  std::vector<net::AdjEntry> entries;
  ASSERT_TRUE(instance->reader->GetAdjacency(0, &entries).ok());
  EXPECT_GT(instance->pool->stats().accesses(), 0u);
  instance->ResetIoState();
  EXPECT_EQ(instance->pool->stats().accesses(), 0u);
  EXPECT_EQ(instance->disk.stats().page_reads, 0u);
  EXPECT_EQ(instance->pool->resident_frames(), 0u);
}

}  // namespace
}  // namespace mcn::gen
