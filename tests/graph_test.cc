#include <gtest/gtest.h>

#include "mcn/common/random.h"
#include "mcn/graph/cost_vector.h"
#include "mcn/graph/facility.h"
#include "mcn/graph/location.h"
#include "mcn/graph/multi_cost_graph.h"

namespace mcn::graph {
namespace {

TEST(CostVectorTest, ConstructionAndAccess) {
  CostVector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.dim(), 3);
  EXPECT_EQ(v[0], 1.0);
  EXPECT_EQ(v[2], 3.0);
  v[1] = 9.0;
  EXPECT_EQ(v[1], 9.0);

  CostVector filled(4, 7.5);
  EXPECT_EQ(filled.dim(), 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(filled[i], 7.5);
}

TEST(CostVectorTest, StrictDominance) {
  CostVector a{1, 2}, b{2, 3}, c{1, 2}, d{2, 1};
  EXPECT_TRUE(a.Dominates(b));
  EXPECT_FALSE(b.Dominates(a));
  EXPECT_FALSE(a.Dominates(c));  // equal: not strict
  EXPECT_TRUE(a.DominatesOrEquals(c));
  EXPECT_FALSE(a.Dominates(d));  // incomparable
  EXPECT_FALSE(d.Dominates(a));
}

TEST(CostVectorTest, DominancePartialOrderProperties) {
  Random rng(3);
  for (int iter = 0; iter < 500; ++iter) {
    CostVector x(3), y(3), z(3);
    for (int i = 0; i < 3; ++i) {
      x[i] = rng.UniformDouble(0, 10);
      y[i] = rng.UniformDouble(0, 10);
      z[i] = rng.UniformDouble(0, 10);
    }
    // Irreflexive.
    EXPECT_FALSE(x.Dominates(x));
    // Asymmetric.
    if (x.Dominates(y)) {
      EXPECT_FALSE(y.Dominates(x));
    }
    // Transitive.
    if (x.Dominates(y) && y.Dominates(z)) {
      EXPECT_TRUE(x.Dominates(z));
    }
  }
}

TEST(CostVectorTest, ArithmeticAndAggregates) {
  CostVector a{1, 2, 3}, b{10, 20, 30};
  CostVector s = a + b;
  EXPECT_EQ(s[0], 11.0);
  EXPECT_EQ(s[2], 33.0);
  EXPECT_EQ(a.Scaled(2.0)[1], 4.0);
  EXPECT_EQ(a.Sum(), 6.0);
  EXPECT_EQ(b.MaxComponent(), 30.0);
}

TEST(CostVectorTest, ApproxEquals) {
  CostVector a{1.0, 2.0};
  CostVector b{1.0 + 1e-12, 2.0 - 1e-12};
  CostVector c{1.1, 2.0};
  EXPECT_TRUE(a.ApproxEquals(b));
  EXPECT_FALSE(a.ApproxEquals(c));
  EXPECT_FALSE(a.ApproxEquals(CostVector{1.0}));
}

TEST(EdgeKeyTest, CanonicalizationAndPacking) {
  EdgeKey a(5, 3), b(3, 5);
  EXPECT_EQ(a.u, 3u);
  EXPECT_EQ(a.v, 5u);
  EXPECT_EQ(a, b);
  EXPECT_EQ(EdgeKey::Unpack(a.Pack()), a);
  EdgeKeyHash h;
  EXPECT_EQ(h(a), h(b));
}

TEST(MultiCostGraphTest, BuildAndNeighbors) {
  MultiCostGraph g(2);
  NodeId a = g.AddNode(0, 0);
  NodeId b = g.AddNode(1, 0);
  NodeId c = g.AddNode(0, 1);
  ASSERT_TRUE(g.AddEdge(a, b, CostVector{1, 2}).ok());
  ASSERT_TRUE(g.AddEdge(c, a, CostVector{3, 4}).ok());
  g.Finalize();

  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.Neighbors(a).size(), 2u);
  EXPECT_EQ(g.Neighbors(b).size(), 1u);
  EXPECT_EQ(g.Neighbors(b)[0].neighbor, a);
  EXPECT_EQ(g.MaxDegree(), 2u);

  EdgeId e = g.FindEdge(b, a).value();
  EXPECT_EQ(g.edge(e).w[1], 2.0);
  EXPECT_EQ(g.edge(e).u, a);  // canonical: a < b
  EXPECT_EQ(g.edge(e).Other(a), b);
  EXPECT_FALSE(g.FindEdge(b, c).ok());
}

TEST(MultiCostGraphTest, RejectsBadEdges) {
  MultiCostGraph g(2);
  NodeId a = g.AddNode(0, 0);
  NodeId b = g.AddNode(1, 0);
  EXPECT_FALSE(g.AddEdge(a, a, CostVector{1, 1}).ok());   // self loop
  EXPECT_FALSE(g.AddEdge(a, 99, CostVector{1, 1}).ok());  // out of range
  EXPECT_FALSE(g.AddEdge(a, b, CostVector{1}).ok());      // wrong dim
  EXPECT_FALSE(g.AddEdge(a, b, CostVector{-1, 1}).ok());  // negative
}

TEST(MultiCostGraphTest, AllowsZeroCosts) {
  MultiCostGraph g(2);
  NodeId a = g.AddNode(0, 0);
  NodeId b = g.AddNode(1, 0);
  EXPECT_TRUE(g.AddEdge(a, b, CostVector{0, 0}).ok());
}

TEST(MultiCostGraphTest, EuclideanDistance) {
  MultiCostGraph g(1);
  NodeId a = g.AddNode(0, 0);
  NodeId b = g.AddNode(3, 4);
  EXPECT_DOUBLE_EQ(g.EuclideanDistance(a, b), 5.0);
}

TEST(FacilitySetTest, AddAndIndexByEdge) {
  MultiCostGraph g(1);
  NodeId a = g.AddNode(0, 0);
  NodeId b = g.AddNode(1, 0);
  NodeId c = g.AddNode(2, 0);
  EdgeId e0 = g.AddEdge(a, b, CostVector{1}).value();
  EdgeId e1 = g.AddEdge(b, c, CostVector{1}).value();
  g.Finalize();

  FacilitySet f;
  FacilityId f0 = f.Add(e0, 0.5);
  FacilityId f1 = f.Add(e1, 0.1);
  FacilityId f2 = f.Add(e0, 0.9);
  f.Finalize();

  EXPECT_EQ(f.size(), 3u);
  EXPECT_EQ(f[f0].frac, 0.5);
  auto on_e0 = f.OnEdge(e0);
  ASSERT_EQ(on_e0.size(), 2u);
  EXPECT_EQ(on_e0[0], f0);
  EXPECT_EQ(on_e0[1], f2);
  EXPECT_EQ(f.OnEdge(e1).size(), 1u);
  EXPECT_EQ(f.OnEdge(e1)[0], f1);
  EXPECT_EQ(f.EdgesWithFacilities().size(), 2u);
}

TEST(FacilitySetTest, ClampsFraction) {
  FacilitySet f;
  FacilityId id = f.Add(0, 1.5);
  EXPECT_EQ(f[id].frac, 1.0);
  id = f.Add(0, -0.5);
  EXPECT_EQ(f[id].frac, 0.0);
}

TEST(FacilitySetTest, EmptySetFinalizes) {
  FacilitySet f;
  f.Finalize();
  EXPECT_TRUE(f.empty());
  EXPECT_TRUE(f.OnEdge(0).empty());
  EXPECT_TRUE(f.EdgesWithFacilities().empty());
}

TEST(LocationTest, NodeAndEdgeForms) {
  Location n = Location::AtNode(7);
  EXPECT_TRUE(n.is_node());
  EXPECT_EQ(n.node(), 7u);

  Location e = Location::OnEdge(EdgeKey(9, 4), 0.25);
  EXPECT_FALSE(e.is_node());
  EXPECT_EQ(e.edge().u, 4u);
  EXPECT_EQ(e.edge().v, 9u);
  EXPECT_EQ(e.frac(), 0.25);
  EXPECT_NE(e.ToString().find("edge"), std::string::npos);
}

}  // namespace
}  // namespace mcn::graph
