#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "mcn/algo/incremental_topk.h"
#include "mcn/algo/topk_query.h"
#include "mcn/expand/engines.h"
#include "test_util.h"

namespace mcn::algo {
namespace {

using expand::CeaEngine;
using expand::MemEngine;
using graph::Location;

TEST(IncrementalTopKTest, DrainsAllReachableInScoreOrder) {
  test::DiskFixture fx(test::TinyGraph(),
                       test::TinyFacilities(test::TinyGraph()), 64);
  AggregateFn f = WeightedSum({0.6, 0.4});
  Location q = Location::AtNode(0);
  auto oracle = test::OracleTopK(fx.graph, fx.facilities, q, f, 1000);

  auto engine = CeaEngine::Create(fx.reader.get(), q).value();
  IncrementalTopK inc(engine.get(), f);
  std::vector<TopKEntry> drained;
  for (;;) {
    auto next = inc.NextBest().value();
    if (!next.has_value()) break;
    drained.push_back(*next);
  }
  ASSERT_EQ(drained.size(), oracle.size());
  for (size_t i = 0; i < drained.size(); ++i) {
    EXPECT_NEAR(drained[i].score, oracle[i].score, 1e-9) << "rank " << i;
  }
  // Non-decreasing score order.
  for (size_t i = 1; i < drained.size(); ++i) {
    EXPECT_GE(drained[i].score, drained[i - 1].score - 1e-12);
  }
  // Exhausted: stays nullopt.
  EXPECT_FALSE(inc.NextBest().value().has_value());
  EXPECT_FALSE(inc.NextBest().value().has_value());
}

TEST(IncrementalTopKTest, PrefixEqualsKnownKResult) {
  test::SmallConfig config;
  config.num_costs = 3;
  config.seed = 77;
  auto instance = test::MakeSmallInstance(config).value();
  AggregateFn f = WeightedSum(test::TestWeights(3, 99));
  Random rng(123);

  for (int qi = 0; qi < 3; ++qi) {
    Location q = instance->RandomQueryLocation(rng);

    auto inc_engine = CeaEngine::Create(instance->reader.get(), q).value();
    IncrementalTopK inc(inc_engine.get(), f);
    std::vector<TopKEntry> prefix;
    for (int i = 0; i < 8; ++i) {
      auto next = inc.NextBest().value();
      if (!next.has_value()) break;
      prefix.push_back(*next);
    }

    auto k_engine = CeaEngine::Create(instance->reader.get(), q).value();
    TopKOptions opts;
    opts.k = static_cast<int>(prefix.size());
    TopKQuery query(k_engine.get(), f, opts);
    auto known = query.Run().value();

    ASSERT_EQ(known.size(), prefix.size());
    for (size_t i = 0; i < prefix.size(); ++i) {
      EXPECT_NEAR(prefix[i].score, known[i].score, 1e-9)
          << "q=" << q.ToString() << " rank " << i;
    }
  }
}

TEST(IncrementalTopKTest, MatchesOracleOnRandomInstances) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    test::SmallConfig config;
    config.num_costs = 2 + seed % 3;
    config.seed = seed + 400;
    auto instance = test::MakeSmallInstance(config).value();
    AggregateFn f =
        WeightedSum(test::TestWeights(config.num_costs, seed * 11));
    Random rng(seed);
    Location q = instance->RandomQueryLocation(rng);
    auto oracle =
        test::OracleTopK(instance->graph, instance->facilities, q, f, 12);

    auto engine = MemEngine::Create(&instance->graph, &instance->facilities,
                                    q)
                      .value();
    IncrementalTopK inc(engine.get(), f);
    for (size_t i = 0; i < oracle.size(); ++i) {
      auto next = inc.NextBest().value();
      ASSERT_TRUE(next.has_value()) << "rank " << i;
      EXPECT_NEAR(next->score, oracle[i].score, 1e-9) << "rank " << i;
      EXPECT_NEAR(next->score, f(next->costs), 1e-12);
    }
  }
}

TEST(IncrementalTopKTest, ReportedEntriesHaveCompleteVectors) {
  test::DiskFixture fx(test::TinyGraph(),
                       test::TinyFacilities(test::TinyGraph()), 64);
  AggregateFn f = WeightedSum({0.5, 0.5});
  Location q = Location::AtNode(8);
  auto oracle = test::OracleReachableCosts(fx.graph, fx.facilities, q);
  auto engine = CeaEngine::Create(fx.reader.get(), q).value();
  IncrementalTopK inc(engine.get(), f);
  for (;;) {
    auto next = inc.NextBest().value();
    if (!next.has_value()) break;
    auto it = std::find(oracle.ids.begin(), oracle.ids.end(),
                        next->facility);
    ASSERT_NE(it, oracle.ids.end());
    EXPECT_TRUE(next->costs.ApproxEquals(
        oracle.costs[it - oracle.ids.begin()], 1e-9));
  }
}

TEST(IncrementalTopKTest, EmptyFacilitySetYieldsNothing) {
  graph::MultiCostGraph g = test::TinyGraph();
  graph::FacilitySet empty;
  empty.Finalize();
  test::DiskFixture fx(std::move(g), std::move(empty), 64);
  auto engine = CeaEngine::Create(fx.reader.get(), Location::AtNode(0))
                    .value();
  IncrementalTopK inc(engine.get(), WeightedSum({0.5, 0.5}));
  EXPECT_FALSE(inc.NextBest().value().has_value());
}

}  // namespace
}  // namespace mcn::algo
