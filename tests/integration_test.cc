// End-to-end tests on a moderately sized generated city: generator ->
// storage scheme -> buffer pool -> LSA/CEA skyline and top-k, all verified
// against the in-memory oracle, plus the naive baseline.
#include <gtest/gtest.h>

#include <set>

#include "mcn/algo/incremental_topk.h"
#include "mcn/algo/naive.h"
#include "mcn/algo/skyline_query.h"
#include "mcn/algo/topk_query.h"
#include "mcn/expand/engines.h"
#include "test_util.h"

namespace mcn {
namespace {

using algo::AggregateFn;
using algo::SkylineQuery;
using algo::TopKQuery;
using algo::WeightedSum;
using graph::Location;

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gen::ExperimentConfig config;
    config.nodes = 3000;
    config.edges = 3823;
    config.facilities = 400;
    config.clusters = 6;
    config.num_costs = 4;
    config.distribution = gen::CostDistribution::kAntiCorrelated;
    config.buffer_pct = 1.0;
    config.seed = 2026;
    instance_ = gen::BuildInstance(config).value().release();
  }

  static void TearDownTestSuite() {
    delete instance_;
    instance_ = nullptr;
  }

  static gen::Instance* instance_;
};

gen::Instance* IntegrationTest::instance_ = nullptr;

TEST_F(IntegrationTest, SkylineLsaCeaOracleAgreeOnManyQueries) {
  Random rng(42);
  for (int qi = 0; qi < 8; ++qi) {
    Location q = instance_->RandomQueryLocation(rng);
    auto oracle =
        test::OracleSkyline(instance_->graph, instance_->facilities, q);

    auto lsa =
        expand::LsaEngine::Create(instance_->reader.get(), q).value();
    SkylineQuery lsa_query(lsa.get());
    auto lsa_ids = lsa_query.ComputeAll().value();

    auto cea =
        expand::CeaEngine::Create(instance_->reader.get(), q).value();
    SkylineQuery cea_query(cea.get());
    auto cea_ids = cea_query.ComputeAll().value();

    std::set<graph::FacilityId> lsa_set, cea_set;
    for (auto& e : lsa_ids) lsa_set.insert(e.facility);
    for (auto& e : cea_ids) cea_set.insert(e.facility);
    EXPECT_EQ(lsa_set, oracle) << q.ToString();
    EXPECT_EQ(cea_set, oracle) << q.ToString();
  }
}

TEST_F(IntegrationTest, TopKAgreesOnManyQueriesAndKs) {
  Random rng(43);
  for (int qi = 0; qi < 4; ++qi) {
    Location q = instance_->RandomQueryLocation(rng);
    std::vector<double> weights(4);
    for (double& w : weights) w = rng.UniformDouble(0.0, 1.0);
    AggregateFn f = WeightedSum(weights);
    for (int k : {1, 4, 16}) {
      auto oracle =
          test::OracleTopK(instance_->graph, instance_->facilities, q, f, k);
      auto cea =
          expand::CeaEngine::Create(instance_->reader.get(), q).value();
      algo::TopKOptions opts;
      opts.k = k;
      TopKQuery query(cea.get(), f, opts);
      auto result = query.Run().value();
      ASSERT_EQ(result.size(), oracle.size());
      for (size_t i = 0; i < result.size(); ++i) {
        EXPECT_NEAR(result[i].score, oracle[i].score, 1e-9)
            << "k=" << k << " rank " << i;
      }
    }
  }
}

TEST_F(IntegrationTest, NaiveBaselineAgreesAndCostsMore) {
  Random rng(44);
  Location q = instance_->RandomQueryLocation(rng);

  instance_->ResetIoState();
  auto cea = expand::CeaEngine::Create(instance_->reader.get(), q).value();
  SkylineQuery cea_query(cea.get());
  auto cea_result = cea_query.ComputeAll().value();
  uint64_t cea_accesses = instance_->pool->stats().accesses();

  instance_->ResetIoState();
  auto naive = algo::NaiveSkyline(*instance_->reader, q).value();
  uint64_t naive_accesses = instance_->pool->stats().accesses();

  std::set<graph::FacilityId> a, b;
  for (auto& e : cea_result) a.insert(e.facility);
  for (auto& e : naive) b.insert(e.facility);
  EXPECT_EQ(a, b);
  // The baseline reads the entire MCN d times; local search touches a
  // neighborhood. On a 3000-node network the gap must be substantial.
  EXPECT_GT(naive_accesses, 2 * cea_accesses);
}

TEST_F(IntegrationTest, IncrementalTopKStreamsTheFullRanking) {
  Random rng(45);
  Location q = instance_->RandomQueryLocation(rng);
  AggregateFn f = WeightedSum({0.4, 0.3, 0.2, 0.1});
  auto oracle =
      test::OracleTopK(instance_->graph, instance_->facilities, q, f, 32);
  auto cea = expand::CeaEngine::Create(instance_->reader.get(), q).value();
  algo::IncrementalTopK inc(cea.get(), f);
  for (size_t i = 0; i < oracle.size(); ++i) {
    auto next = inc.NextBest().value();
    ASSERT_TRUE(next.has_value());
    EXPECT_NEAR(next->score, oracle[i].score, 1e-9) << "rank " << i;
  }
}

TEST_F(IntegrationTest, ProgressiveSkylineDeliversFirstResultEarly) {
  // The first skyline member (a first-NN) must arrive before the query
  // completes (progressiveness, paper §I) — strictly so for every query,
  // and much earlier on average.
  Random rng(46);
  double ratio_sum = 0;
  const int kQueries = 6;
  for (int qi = 0; qi < kQueries; ++qi) {
    Location q = instance_->RandomQueryLocation(rng);
    instance_->ResetIoState();
    auto cea = expand::CeaEngine::Create(instance_->reader.get(), q).value();
    SkylineQuery query(cea.get());
    auto first = query.Next().value();
    ASSERT_TRUE(first.has_value());
    uint64_t first_accesses = instance_->pool->stats().accesses();
    query.ComputeAll().value();
    uint64_t total_accesses = instance_->pool->stats().accesses();
    EXPECT_LT(first_accesses, total_accesses);
    ratio_sum += static_cast<double>(first_accesses) / total_accesses;
  }
  EXPECT_LT(ratio_sum / kQueries, 0.6);
}

TEST_F(IntegrationTest, QueriesAtNodesWork) {
  Random rng(47);
  for (int qi = 0; qi < 3; ++qi) {
    Location q = Location::AtNode(
        static_cast<graph::NodeId>(rng.Uniform(instance_->graph.num_nodes())));
    auto oracle =
        test::OracleSkyline(instance_->graph, instance_->facilities, q);
    auto cea =
        expand::CeaEngine::Create(instance_->reader.get(), q).value();
    SkylineQuery query(cea.get());
    auto entries = query.ComputeAll().value();
    std::set<graph::FacilityId> got;
    for (auto& e : entries) got.insert(e.facility);
    EXPECT_EQ(got, oracle);
  }
}

}  // namespace
}  // namespace mcn
