// Tests of the I/O contracts the paper's analysis rests on (§IV-B, §VI):
// CEA's fetch-at-most-once guarantee, LSA's multiple-read behavior, the
// effect of the buffer size, and the shrinking-stage facility-file
// avoidance.
#include <gtest/gtest.h>

#include "mcn/algo/skyline_query.h"
#include "mcn/algo/topk_query.h"
#include "mcn/expand/engines.h"
#include "test_util.h"

namespace mcn::algo {
namespace {

using expand::CeaEngine;
using expand::LsaEngine;
using graph::Location;

class IoAccountingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    test::SmallConfig config;
    config.nodes = 600;
    config.edges = 770;
    config.facilities = 50;
    config.num_costs = 4;
    config.seed = 1234;
    instance_ = test::MakeSmallInstance(config).value();
  }

  Location Query(uint64_t seed) {
    Random rng(seed);
    return instance_->RandomQueryLocation(rng);
  }

  std::unique_ptr<gen::Instance> instance_;
};

TEST_F(IoAccountingTest, CeaNeverFetchesARecordTwice) {
  for (uint64_t s : {1u, 2u, 3u}) {
    Location q = Query(s);
    auto cea = CeaEngine::Create(instance_->reader.get(), q).value();
    SkylineQuery query(cea.get());
    query.ComputeAll().value();
    const auto& st = cea->fetch().stats();
    // Unique-record accounting: every fetch fills the cache exactly once.
    EXPECT_EQ(st.adjacency_fetches, cea->cache().cached_nodes());
    EXPECT_EQ(st.facility_fetches, cea->cache().cached_edges());
    EXPECT_LE(st.adjacency_fetches, instance_->graph.num_nodes());
  }
}

TEST_F(IoAccountingTest, LsaRepeatsReadsUpToD) {
  Location q = Query(7);
  auto lsa = LsaEngine::Create(instance_->reader.get(), q).value();
  SkylineQuery lsa_query(lsa.get());
  lsa_query.ComputeAll().value();
  auto lsa_fetches = lsa->fetch().stats().adjacency_fetches;

  auto cea = CeaEngine::Create(instance_->reader.get(), q).value();
  SkylineQuery cea_query(cea.get());
  cea_query.ComputeAll().value();
  auto cea_fetches = cea->fetch().stats().adjacency_fetches;

  // Same pop sequences, so LSA touches the same records but up to d times.
  EXPECT_GE(lsa_fetches, cea_fetches);
  EXPECT_LE(lsa_fetches,
            cea_fetches * static_cast<uint64_t>(
                              instance_->graph.num_costs()));
  // On a non-trivial query LSA really does re-read.
  EXPECT_GT(lsa_fetches, cea_fetches);
}

TEST_F(IoAccountingTest, CeaCostsFewerBufferMissesThanLsa) {
  Location q = Query(11);
  instance_->ResetIoState();
  auto lsa = LsaEngine::Create(instance_->reader.get(), q).value();
  SkylineQuery lsa_query(lsa.get());
  lsa_query.ComputeAll().value();
  uint64_t lsa_misses = instance_->pool->stats().misses;

  instance_->ResetIoState();
  auto cea = CeaEngine::Create(instance_->reader.get(), q).value();
  SkylineQuery cea_query(cea.get());
  cea_query.ComputeAll().value();
  uint64_t cea_misses = instance_->pool->stats().misses;

  EXPECT_LT(cea_misses, lsa_misses);
}

TEST_F(IoAccountingTest, ZeroBufferMakesEveryAccessAMiss) {
  Location q = Query(13);
  instance_->pool->SetCapacity(0);
  instance_->ResetIoState();
  auto cea = CeaEngine::Create(instance_->reader.get(), q).value();
  SkylineQuery query(cea.get());
  query.ComputeAll().value();
  EXPECT_EQ(instance_->pool->stats().hits, 0u);
  EXPECT_EQ(instance_->pool->stats().misses,
            instance_->pool->stats().accesses());
  EXPECT_EQ(instance_->disk.stats().page_reads,
            instance_->pool->stats().misses);
}

TEST_F(IoAccountingTest, LargerBufferNeverIncreasesMisses) {
  Location q = Query(17);
  std::vector<uint64_t> misses;
  for (double pct : {0.0, 0.5, 1.0, 2.0, 100.0}) {
    instance_->pool->SetCapacity(
        gen::BufferFrames(pct, instance_->files.total_pages));
    instance_->ResetIoState();
    auto lsa = LsaEngine::Create(instance_->reader.get(), q).value();
    SkylineQuery query(lsa.get());
    query.ComputeAll().value();
    misses.push_back(instance_->pool->stats().misses);
  }
  for (size_t i = 1; i < misses.size(); ++i) {
    EXPECT_LE(misses[i], misses[i - 1]) << "buffer step " << i;
  }
  // Restore default.
  instance_->pool->SetCapacity(
      gen::BufferFrames(1.0, instance_->files.total_pages));
}

TEST_F(IoAccountingTest, FacilityFilterReducesFacilityReads) {
  Location q = Query(19);
  SkylineOptions with;
  SkylineOptions without;
  without.use_facility_filter = false;

  auto e1 = CeaEngine::Create(instance_->reader.get(), q).value();
  SkylineQuery q1(e1.get(), with);
  q1.ComputeAll().value();
  uint64_t with_reads = e1->fetch().stats().facility_fetches;

  auto e2 = CeaEngine::Create(instance_->reader.get(), q).value();
  SkylineQuery q2(e2.get(), without);
  q2.ComputeAll().value();
  uint64_t without_reads = e2->fetch().stats().facility_fetches;

  EXPECT_LE(with_reads, without_reads);
}

TEST_F(IoAccountingTest, StopFinishedExpansionsReducesNodeWork) {
  Location q = Query(23);
  SkylineOptions with;
  SkylineOptions without;
  without.stop_finished_expansions = false;

  auto e1 = CeaEngine::Create(instance_->reader.get(), q).value();
  SkylineQuery q1(e1.get(), with);
  q1.ComputeAll().value();
  uint64_t with_req = e1->fetch().stats().adjacency_requests;

  auto e2 = CeaEngine::Create(instance_->reader.get(), q).value();
  SkylineQuery q2(e2.get(), without);
  q2.ComputeAll().value();
  uint64_t without_req = e2->fetch().stats().adjacency_requests;

  EXPECT_LE(with_req, without_req);
}

TEST_F(IoAccountingTest, TopKSharesTheSameIoContracts) {
  Location q = Query(29);
  AggregateFn f = WeightedSum(test::TestWeights(4, 1));
  TopKOptions opts;
  opts.k = 4;

  instance_->ResetIoState();
  auto lsa = LsaEngine::Create(instance_->reader.get(), q).value();
  TopKQuery lsa_query(lsa.get(), f, opts);
  lsa_query.Run().value();
  uint64_t lsa_misses = instance_->pool->stats().misses;

  instance_->ResetIoState();
  auto cea = CeaEngine::Create(instance_->reader.get(), q).value();
  TopKQuery cea_query(cea.get(), f, opts);
  cea_query.Run().value();
  uint64_t cea_misses = instance_->pool->stats().misses;

  EXPECT_LE(cea_misses, lsa_misses);
  EXPECT_EQ(cea->fetch().stats().adjacency_fetches,
            cea->cache().cached_nodes());
}

}  // namespace
}  // namespace mcn::algo
