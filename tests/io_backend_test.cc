// Tests for the file-backed batched read path (DESIGN.md §13): the
// MCNDISK1 spill written by DiskManager::AttachFileBackend, byte parity of
// ReadPagesBatch against the in-memory pages for every Fig. 2 file
// (including the landmark index), the single-read/batched-read counter
// equivalence contract, the io_uring -> preadv degradation switch, and the
// `file_eio` chaos seam.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "mcn/common/fault_injector.h"
#include "mcn/common/macros.h"
#include "mcn/gen/workload.h"
#include "mcn/storage/disk_manager.h"
#include "mcn/storage/io_backend.h"
#include "mcn/storage/persistence.h"
#include "test_util.h"

namespace mcn {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// A built instance whose disk carries every Fig. 2 file plus the
/// landmark index files (DESIGN.md §12) — the widest file census an
/// attached image has to cover.
std::unique_ptr<gen::Instance> InstanceWithLandmarks() {
  gen::ExperimentConfig config = gen::ExperimentConfig().Scaled(0.005);
  config.landmarks = 4;
  auto instance = gen::BuildInstance(config);
  MCN_CHECK(instance.ok());
  return std::move(instance.value());
}

/// Every allocated PageId of `disk`, file by file.
std::vector<storage::PageId> AllPages(const storage::DiskManager& disk) {
  std::vector<storage::PageId> ids;
  for (storage::FileId f = 0; f < disk.num_files(); ++f) {
    const uint32_t pages = disk.NumPages(f).value();
    for (uint32_t p = 0; p < pages; ++p) ids.push_back({f, p});
  }
  return ids;
}

/// Runs one ReadPagesBatch over `ids` and returns the fetched buffers.
std::vector<std::vector<std::byte>> FetchBatch(
    storage::DiskManager& disk, const std::vector<storage::PageId>& ids) {
  std::vector<std::vector<std::byte>> bufs(
      ids.size(), std::vector<std::byte>(storage::kPageSize));
  std::vector<std::byte*> ptrs;
  ptrs.reserve(ids.size());
  for (auto& b : bufs) ptrs.push_back(b.data());
  Status status = disk.ReadPagesBatch(ids, ptrs);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return bufs;
}

TEST(IoBackendTest, AttachedImageRoundTripsEveryFileByteIdentical) {
  auto instance = InstanceWithLandmarks();
  storage::DiskManager& disk = instance->disk;

  // The census must include the landmark index (the file the PR-8 prune
  // oracle reads) — otherwise this test is not covering Fig. 2 + §12.
  bool saw_landmark = false;
  for (storage::FileId f = 0; f < disk.num_files(); ++f) {
    if (disk.FileName(f).value().find("landmark") != std::string::npos) {
      saw_landmark = true;
    }
  }
  ASSERT_TRUE(saw_landmark);

  const std::string path = TempPath("io_backend_roundtrip.img");
  ASSERT_TRUE(
      disk.AttachFileBackend(path, storage::IoBackendKind::kPreadv).ok());

  // The spill is a regular MCNDISK1 image: LoadDiskImage must reproduce
  // every file, name and page byte-for-byte.
  auto loaded = storage::LoadDiskImage(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_files(), disk.num_files());
  for (storage::FileId f = 0; f < disk.num_files(); ++f) {
    EXPECT_EQ(loaded->FileName(f).value(), disk.FileName(f).value());
    ASSERT_EQ(loaded->NumPages(f).value(), disk.NumPages(f).value());
    for (uint32_t p = 0; p < disk.NumPages(f).value(); ++p) {
      const std::byte* want = disk.PageData({f, p}).value();
      const std::byte* got = loaded->PageData({f, p}).value();
      ASSERT_EQ(std::memcmp(got, want, storage::kPageSize), 0)
          << "file " << disk.FileName(f).value() << " page " << p;
    }
  }

  // And the physical read path must serve the same bytes: one batch over
  // every page of every file, compared against the in-memory truth.
  const std::vector<storage::PageId> ids = AllPages(disk);
  const auto bufs = FetchBatch(disk, ids);
  for (size_t i = 0; i < ids.size(); ++i) {
    const std::byte* want = disk.PageData(ids[i]).value();
    ASSERT_EQ(std::memcmp(bufs[i].data(), want, storage::kPageSize), 0)
        << "file " << disk.FileName(ids[i].file).value() << " page "
        << ids[i].page;
  }

  disk.DetachFileBackend();
  EXPECT_EQ(disk.io_backend(), storage::IoBackendKind::kMemory);
  std::remove(path.c_str());
}

TEST(IoBackendTest, BatchedReadsTickCountersLikeSingleReads) {
  test::DiskFixture fx(test::TinyGraph(),
                       test::TinyFacilities(test::TinyGraph()), 16);
  storage::DiskManager& disk = fx.disk;
  const std::vector<storage::PageId> ids = AllPages(disk);
  ASSERT_GE(ids.size(), 2u);

  // Reference: n single reads.
  disk.ResetStats();
  std::vector<std::byte> page(storage::kPageSize);
  for (const storage::PageId& id : ids) {
    ASSERT_TRUE(disk.ReadPage(id, page.data()).ok());
  }
  const storage::DiskManager::Stats single = disk.stats();
  EXPECT_EQ(single.page_reads, ids.size());
  EXPECT_EQ(single.batch_reads, 0u);

  // One batch over the same pages: identical page_reads and per-file
  // slices, plus the batch_* accounting — in memory mode...
  disk.ResetStats();
  FetchBatch(disk, ids);
  storage::DiskManager::Stats batched = disk.stats();
  EXPECT_EQ(batched.page_reads, single.page_reads);
  ASSERT_EQ(batched.per_file_reads.size(), single.per_file_reads.size());
  for (size_t f = 0; f < single.per_file_reads.size(); ++f) {
    EXPECT_EQ(batched.per_file_reads[f].reads,
              single.per_file_reads[f].reads)
        << single.per_file_reads[f].name;
  }
  EXPECT_EQ(batched.batch_reads, 1u);
  EXPECT_EQ(batched.batch_pages, ids.size());
  EXPECT_EQ(batched.batch_max_pages, ids.size());

  // ...and identically with a file backend attached.
  const std::string path = TempPath("io_backend_counters.img");
  ASSERT_TRUE(
      disk.AttachFileBackend(path, storage::IoBackendKind::kPreadv).ok());
  disk.ResetStats();
  FetchBatch(disk, ids);
  batched = disk.stats();
  EXPECT_EQ(batched.page_reads, single.page_reads);
  for (size_t f = 0; f < single.per_file_reads.size(); ++f) {
    EXPECT_EQ(batched.per_file_reads[f].reads,
              single.per_file_reads[f].reads)
        << single.per_file_reads[f].name;
  }
  EXPECT_EQ(batched.batch_reads, 1u);
  EXPECT_EQ(batched.batch_pages, ids.size());
  disk.DetachFileBackend();
  std::remove(path.c_str());
}

TEST(IoBackendTest, OpenDegradesIoUringGracefully) {
  // A real (tiny) image to open.
  storage::DiskManager disk;
  storage::FileId f = disk.CreateFile("solo");
  disk.AllocatePage(f).value();
  const std::string path = TempPath("io_backend_degrade.img");
  ASSERT_TRUE(storage::SaveDiskImage(disk, path).ok());

  auto backend =
      storage::FileIoBackend::Open(path, storage::IoBackendKind::kIoUring);
  ASSERT_TRUE(backend.ok()) << backend.status().ToString();
  if (storage::IoUringCompiledIn()) {
    // Either the ring came up or the kernel refused and we degraded; both
    // kinds are valid, crashing or erroring is not.
    EXPECT_TRUE((*backend)->kind() == storage::IoBackendKind::kIoUring ||
                (*backend)->kind() == storage::IoBackendKind::kPreadv);
  } else {
    EXPECT_EQ((*backend)->kind(), storage::IoBackendKind::kPreadv);
  }
  // kMemory is never a physical backend.
  EXPECT_FALSE(
      storage::FileIoBackend::Open(path, storage::IoBackendKind::kMemory)
          .ok());
  EXPECT_FALSE(storage::FileIoBackend::Open(TempPath("missing.img"),
                                            storage::IoBackendKind::kPreadv)
                   .ok());
  std::remove(path.c_str());
}

TEST(IoBackendTest, PreadvRingSurvivesBackToBackBatchChurn) {
  // Regression test: a late-waking preadv worker could read `current_`,
  // claim no run, and touch the batch after its owner had already
  // observed remaining_runs == 0, returned, and destroyed the
  // stack-allocated Batch. Back-to-back batches from several threads
  // maximize that window; the TSan run of this test is the real
  // assertion, the byte-parity checks are the Release-mode one.
  storage::DiskManager disk;
  const storage::FileId file = disk.CreateFile("churn");
  constexpr uint32_t kPages = 48;
  std::vector<std::byte> page(storage::kPageSize);
  for (uint32_t p = 0; p < kPages; ++p) {
    disk.AllocatePage(file).value();
    std::memset(page.data(), static_cast<int>(p + 1), storage::kPageSize);
    ASSERT_TRUE(disk.WritePage({file, p}, page.data()).ok());
  }
  const std::string path = TempPath("io_backend_churn.img");
  ASSERT_TRUE(storage::SaveDiskImage(disk, path).ok());
  auto backend =
      storage::FileIoBackend::Open(path, storage::IoBackendKind::kPreadv);
  ASSERT_TRUE(backend.ok()) << backend.status().ToString();

  // MCNDISK1 layout (persistence.cc): magic(8) + num_files(4) +
  // name_len(4) + name + num_pages(4), then file 0's raw pages.
  const uint64_t data_off = 8 + 4 + 4 + std::strlen("churn") + 4;

  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  constexpr int kBatch = 5;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::byte> bufs[kBatch];
      for (auto& b : bufs) b.resize(storage::kPageSize);
      for (int it = 0; it < kIters; ++it) {
        // Scattered (non-consecutive) pages force multiple preadv runs
        // per batch, so the worker ring engages every iteration.
        uint64_t offsets[kBatch];
        std::byte* ptrs[kBatch];
        uint32_t pages[kBatch];
        for (int j = 0; j < kBatch; ++j) {
          pages[j] =
              static_cast<uint32_t>((t * 7 + it * 11 + j * 13) % kPages);
          offsets[j] = data_off + uint64_t{pages[j]} * storage::kPageSize;
          ptrs[j] = bufs[j].data();
        }
        Status s = (*backend)->ReadBatch(offsets, ptrs, storage::kPageSize);
        if (!s.ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (int j = 0; j < kBatch; ++j) {
          if (std::memcmp(bufs[j].data(),
                          disk.PageData({file, pages[j]}).value(),
                          storage::kPageSize) != 0) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  std::remove(path.c_str());
}

TEST(IoBackendTest, FileEioFaultSeamFiresBeforeCounters) {
  test::DiskFixture fx(test::TinyGraph(),
                       test::TinyFacilities(test::TinyGraph()), 16);
  storage::DiskManager& disk = fx.disk;
  const std::vector<storage::PageId> ids = AllPages(disk);
  const std::string path = TempPath("io_backend_fault.img");
  ASSERT_TRUE(
      disk.AttachFileBackend(path, storage::IoBackendKind::kPreadv).ok());

  auto opts = FaultInjector::ParseSpec("file_eio=1.0,seed=9");
  ASSERT_TRUE(opts.ok()) << opts.status().ToString();
  FaultInjector injector(opts.value());
  FaultInjector::Install(&injector);

  disk.ResetStats();
  std::vector<std::vector<std::byte>> bufs(
      ids.size(), std::vector<std::byte>(storage::kPageSize));
  std::vector<std::byte*> ptrs;
  for (auto& b : bufs) ptrs.push_back(b.data());
  Status status = disk.ReadPagesBatch(ids, ptrs);
  EXPECT_FALSE(status.ok());
  EXPECT_GE(injector.injected(), 1u);
  // The seam sits before any physical read or counter tick: a faulted
  // batch must leave the I/O accounting untouched.
  EXPECT_EQ(disk.stats().page_reads, 0u);
  EXPECT_EQ(disk.stats().batch_reads, 0u);

  // Healing the world (the chaos-test idiom) restores byte-exact service.
  injector.set_enabled(false);
  const auto healthy = FetchBatch(disk, ids);
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(std::memcmp(healthy[i].data(), disk.PageData(ids[i]).value(),
                          storage::kPageSize),
              0);
  }
  FaultInjector::Install(nullptr);
  disk.DetachFileBackend();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mcn
