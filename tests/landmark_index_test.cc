// Landmark lower-bound index coverage (DESIGN.md §12, ctest label `index`):
//
//  * quantization properties: stored lower bounds never exceed the exact
//    distance, the one-ulp upper bound never undercuts it;
//  * deterministic selection: SelectLandmarks is a pure function of
//    (graph, L, partition) — same inputs, same landmark list;
//  * build determinism + persistence: two builds of the same graph agree
//    row for row, and a SaveNetworkDatabase/LoadNetworkDatabase round trip
//    reopens a validating index with identical rows;
//  * admissibility: every stored (dimension, landmark) entry brackets the
//    exact single-criterion Dijkstra distance;
//  * exactness at the query layer: skyline runs with the oracle installed
//    are byte-identical to runs without it (flat and sharded layouts, and
//    through QueryService), prune at least once somewhere across the
//    sweep, and obey the probe accounting inequality
//    adjacency_requests_on + nodes_pruned <= adjacency_requests_off.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "mcn/algo/result_hash.h"
#include "mcn/algo/skyline_query.h"
#include "mcn/exec/query_service.h"
#include "mcn/expand/dijkstra.h"
#include "mcn/expand/engines.h"
#include "mcn/gen/workload.h"
#include "mcn/net/catalog.h"
#include "mcn/net/landmark_index.h"
#include "mcn/shard/partition.h"
#include "test_util.h"

namespace mcn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// A small built instance with an index: a few hundred nodes keeps the d*L
/// Dijkstra builds and the exact-oracle comparisons fast.
gen::ExperimentConfig IndexedConfig(uint64_t seed, int d = 3,
                                    uint32_t landmarks = 8) {
  gen::ExperimentConfig config;
  config.nodes = 500;
  config.edges = 700;
  config.facilities = 48;
  config.clusters = 4;
  config.num_costs = d;
  config.buffer_pct = 1.0;
  config.seed = seed;
  config.landmarks = landmarks;
  return config;
}

TEST(LandmarkIndexTest, QuantizationBracketsTheDouble) {
  const uint64_t base = test::AnnounceSeed("landmark_index_test");
  Random rng(base);
  for (int i = 0; i < 10000; ++i) {
    // Spread across magnitudes, including values too precise for float.
    const double x = rng.NextDouble() * std::pow(10.0, rng.UniformInt(0, 12));
    const float lo = net::RoundDownToFloat(x);
    const float hi = net::LandmarkUpperBound(lo);
    EXPECT_LE(static_cast<double>(lo), x) << "x=" << x;
    EXPECT_GE(static_cast<double>(hi), x) << "x=" << x;
  }
  EXPECT_TRUE(std::isinf(net::RoundDownToFloat(kInf)));
  EXPECT_TRUE(std::isinf(net::LandmarkUpperBound(
      net::RoundDownToFloat(kInf))));
  EXPECT_EQ(net::RoundDownToFloat(0.0), 0.0f);
}

TEST(LandmarkIndexTest, SelectionIsDeterministicAndDistinct) {
  const uint64_t base = test::AnnounceSeed("landmark_index_test");
  auto instance = gen::BuildInstance(IndexedConfig(base, 3, 0)).value();
  const auto a =
      net::SelectLandmarks(instance->graph, 8, /*num_shards=*/1, {});
  const auto b =
      net::SelectLandmarks(instance->graph, 8, /*num_shards=*/1, {});
  EXPECT_EQ(a, b);
  EXPECT_LE(a.size(), 8u);
  EXPECT_EQ(std::set<graph::NodeId>(a.begin(), a.end()).size(), a.size());

  // Sharded selection: also deterministic, also distinct, and biased by a
  // real partition's boundary structure.
  shard::GridTilePartitioner partitioner;
  const shard::Partition part = partitioner.Build(instance->graph, 4).value();
  const auto s1 = net::SelectLandmarks(instance->graph, 8, part.num_shards,
                                       part.node_shard);
  const auto s2 = net::SelectLandmarks(instance->graph, 8, part.num_shards,
                                       part.node_shard);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(std::set<graph::NodeId>(s1.begin(), s1.end()).size(), s1.size());
}

TEST(LandmarkIndexTest, BuildIsDeterministicAcrossRuns) {
  const uint64_t base = test::AnnounceSeed("landmark_index_test");
  auto one = gen::BuildInstance(IndexedConfig(base)).value();
  auto two = gen::BuildInstance(IndexedConfig(base)).value();
  ASSERT_TRUE(one->files.landmark.present());
  ASSERT_TRUE(two->files.landmark.present());
  EXPECT_EQ(one->files.landmark.num_landmarks,
            two->files.landmark.num_landmarks);
  EXPECT_EQ(one->files.landmark.num_pages, two->files.landmark.num_pages);
  EXPECT_EQ(one->landmark_reader->landmark_ids(),
            two->landmark_reader->landmark_ids());
  const size_t row_len =
      static_cast<size_t>(one->files.landmark.num_costs) *
      one->files.landmark.num_landmarks;
  std::vector<float> row_one(row_len), row_two(row_len);
  for (graph::NodeId v = 0; v < one->graph.num_nodes(); v += 7) {
    ASSERT_TRUE(one->landmark_reader->LoadNodeRow(v, row_one.data()).ok());
    ASSERT_TRUE(two->landmark_reader->LoadNodeRow(v, row_two.data()).ok());
    EXPECT_EQ(row_one, row_two) << "node " << v;
  }
}

TEST(LandmarkIndexTest, PersistenceRoundTripThroughCatalog) {
  const uint64_t base = test::AnnounceSeed("landmark_index_test");
  auto instance = gen::BuildInstance(IndexedConfig(base)).value();
  ASSERT_TRUE(instance->files.landmark.present());
  const std::string db = TempPath("landmark_netdb");
  ASSERT_TRUE(
      net::SaveNetworkDatabase(instance->disk, instance->files, db).ok());
  auto loaded = net::LoadNetworkDatabase(db).value();
  ASSERT_TRUE(loaded.files.landmark.present());
  EXPECT_EQ(loaded.files.landmark.file, instance->files.landmark.file);
  EXPECT_EQ(loaded.files.landmark.num_landmarks,
            instance->files.landmark.num_landmarks);
  EXPECT_EQ(loaded.files.landmark.num_nodes,
            instance->files.landmark.num_nodes);
  EXPECT_EQ(loaded.files.landmark.num_costs,
            instance->files.landmark.num_costs);
  EXPECT_EQ(loaded.files.landmark.records_per_page,
            instance->files.landmark.records_per_page);
  EXPECT_EQ(loaded.files.landmark.num_pages,
            instance->files.landmark.num_pages);

  net::LandmarkIndexReader reopened(&loaded.disk, loaded.files.landmark);
  ASSERT_TRUE(reopened.Validate().ok());
  EXPECT_EQ(reopened.landmark_ids(), instance->landmark_reader->landmark_ids());
  const size_t row_len = static_cast<size_t>(reopened.num_costs()) *
                         reopened.num_landmarks();
  std::vector<float> row_a(row_len), row_b(row_len);
  for (graph::NodeId v = 0; v < instance->graph.num_nodes(); v += 11) {
    ASSERT_TRUE(instance->landmark_reader->LoadNodeRow(v, row_a.data()).ok());
    ASSERT_TRUE(reopened.LoadNodeRow(v, row_b.data()).ok());
    EXPECT_EQ(row_a, row_b) << "node " << v;
  }

  // A catalog without lm_ keys must still load (index-less databases stay
  // readable), reporting an absent index.
  auto bare = gen::BuildInstance(IndexedConfig(base, 3, 0)).value();
  const std::string bare_path = TempPath("landmark_bare.cat");
  ASSERT_TRUE(net::SaveCatalog(bare->files, bare_path).ok());
  auto bare_files = net::LoadCatalog(bare_path).value();
  EXPECT_FALSE(bare_files.landmark.present());
}

TEST(LandmarkIndexTest, RowsBracketExactDijkstraDistances) {
  const uint64_t base = test::AnnounceSeed("landmark_index_test");
  auto instance = gen::BuildInstance(IndexedConfig(base, 3, 6)).value();
  const net::LandmarkIndexReader& reader = *instance->landmark_reader;
  const int d = reader.num_costs();
  const uint32_t L = reader.num_landmarks();
  const size_t row_len = static_cast<size_t>(d) * L;
  std::vector<float> row(row_len);
  // Exact per-dimension distances from each landmark (undirected network:
  // to == from), the ground truth the stored rows must bracket.
  std::vector<std::vector<double>> exact(static_cast<size_t>(d) * L);
  for (int i = 0; i < d; ++i) {
    for (uint32_t lm = 0; lm < L; ++lm) {
      exact[static_cast<size_t>(i) * L + lm] = expand::ShortestPathCosts(
          instance->graph, i,
          graph::Location::AtNode(reader.landmark_ids()[lm]));
    }
  }
  for (graph::NodeId v = 0; v < instance->graph.num_nodes(); v += 3) {
    ASSERT_TRUE(instance->landmark_reader->LoadNodeRow(v, row.data()).ok());
    for (size_t j = 0; j < row_len; ++j) {
      const double truth = exact[j][v];
      if (std::isinf(truth)) {
        EXPECT_TRUE(std::isinf(row[j])) << "node " << v << " entry " << j;
        continue;
      }
      EXPECT_LE(static_cast<double>(row[j]), truth)
          << "node " << v << " entry " << j;
      EXPECT_GE(static_cast<double>(net::LandmarkUpperBound(row[j])), truth)
          << "node " << v << " entry " << j;
    }
  }
}

struct PruneCapture {
  uint64_t hash = 0;
  std::vector<graph::FacilityId> ids;
  uint64_t adjacency_requests = 0;
  uint64_t nodes_pruned = 0;
  uint64_t prune_checked = 0;
  uint64_t prune_cut = 0;
};

PruneCapture RunSkyline(net::NetworkReader* reader, const graph::Location& q,
                        net::LandmarkIndexReader* index) {
  auto engine = expand::MakeEngine(expand::EngineKind::kCea, reader, q).value();
  algo::SkylineOptions opts;
  opts.exec.landmark_index = index;
  algo::SkylineQuery query(engine.get(), opts);
  auto rows = query.ComputeAll();
  MCN_CHECK(rows.ok());
  PruneCapture c;
  c.hash = algo::HashResult(rows.value());
  for (const auto& e : rows.value()) c.ids.push_back(e.facility);
  c.adjacency_requests = engine->fetch().stats().adjacency_requests;
  for (int i = 0; i < engine->fetch().num_costs(); ++i) {
    c.nodes_pruned += engine->expansion(i).stats().nodes_pruned;
  }
  c.prune_checked = query.stats().prune_checked;
  c.prune_cut = query.stats().prune_cut;
  return c;
}

TEST(LandmarkIndexTest, SkylineWithIndexIsByteIdentical) {
  const uint64_t base = test::AnnounceSeed("landmark_index_test");
  uint64_t total_cut = 0;
  for (int d : {2, 3, 4}) {
    auto instance =
        gen::BuildInstance(IndexedConfig(test::DeriveSeed(base, d), d)).value();
    Random rng(test::DeriveSeed(base, 40 + d));
    for (int qi = 0; qi < 6; ++qi) {
      const graph::Location q = instance->RandomQueryLocation(rng);
      SCOPED_TRACE("d=" + std::to_string(d) + " q=" + q.ToString() +
                   " | rerun: MCN_TEST_SEED=" +
                   std::to_string(test::TestSeed()) +
                   " ctest -R landmark_index_test");
      instance->ResetIoState();
      const PruneCapture off =
          RunSkyline(instance->reader.get(), q, /*index=*/nullptr);
      instance->ResetIoState();
      const PruneCapture on =
          RunSkyline(instance->reader.get(), q, instance->landmark_reader.get());

      // Exactness: the oracle may only skip probes, never change results.
      EXPECT_EQ(off.hash, on.hash);
      EXPECT_EQ(off.ids, on.ids);
      // Off runs never consult the oracle.
      EXPECT_EQ(off.prune_checked, 0u);
      EXPECT_EQ(off.nodes_pruned, 0u);
      // Every pruned pop is a pop the off run probed, and the on run's
      // probes are a subset of the off run's (pruned subtrees also vanish,
      // hence <=, not ==).
      EXPECT_LE(on.adjacency_requests + on.nodes_pruned,
                off.adjacency_requests);
      EXPECT_EQ(on.prune_cut, on.nodes_pruned);
      EXPECT_LE(on.prune_cut, on.prune_checked);
      total_cut += on.prune_cut;
    }
  }
  // The sweep as a whole must exercise the prune path for real.
  EXPECT_GT(total_cut, 0u);
}

TEST(LandmarkIndexTest, ShardedBuildMatchesFlatResults) {
  const uint64_t base = test::AnnounceSeed("landmark_index_test");
  const gen::ExperimentConfig config =
      IndexedConfig(test::DeriveSeed(base, 77));
  auto flat = gen::BuildInstance(config).value();
  Random rng(test::DeriveSeed(base, 78));
  std::vector<graph::Location> queries;
  for (int qi = 0; qi < 4; ++qi) queries.push_back(flat->RandomQueryLocation(rng));

  std::vector<uint64_t> flat_hashes;
  for (const auto& q : queries) {
    flat->ResetIoState();
    flat_hashes.push_back(
        RunSkyline(flat->reader.get(), q, flat->landmark_reader.get()).hash);
  }

  for (int k : {1, 2, 4}) {
    auto sharded = gen::BuildShardedInstance(config, k).value();
    ASSERT_TRUE(sharded->files.landmark.present());
    ASSERT_NE(sharded->landmark_reader, nullptr);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      SCOPED_TRACE("K=" + std::to_string(k) + " q=" + queries[qi].ToString());
      sharded->ResetIoState();
      // The sharded landmark selection differs from the flat one (quota is
      // boundary-biased per shard), so fetch counts may differ — results
      // may not: the oracle is exact for any admissible index.
      const PruneCapture got = RunSkyline(sharded->reader.get(), queries[qi],
                                          sharded->landmark_reader.get());
      EXPECT_EQ(got.hash, flat_hashes[qi]);
    }
  }
}

TEST(LandmarkIndexTest, QueryServicePruneParity) {
  const uint64_t base = test::AnnounceSeed("landmark_index_test");
  auto instance =
      gen::BuildInstance(IndexedConfig(test::DeriveSeed(base, 99))).value();
  ASSERT_TRUE(instance->files.landmark.present());

  // Every spec kind rides the same service, constrained variants included:
  // constraints are a post-dominance filter, so prune parity must hold
  // under them too (the oracle runs during expansion, before filtering).
  Random rng(test::DeriveSeed(base, 100));
  const int d = 3;
  std::vector<api::QuerySpec> specs;
  for (int qi = 0; qi < 10; ++qi) {
    const graph::Location loc = instance->RandomQueryLocation(rng);
    const std::vector<double> weights =
        test::TestWeights(d, test::DeriveSeed(base, 200 + qi));
    api::QuerySpec spec;
    switch (qi % 5) {
      case 0:  // plain skyline
        spec = api::SkylineSpec(loc);
        break;
      case 1:  // epsilon-thinned skyline
        spec = api::SkylineSpec(loc);
        spec.preference.constraints.epsilon = 0.1;
        break;
      case 2:  // cost-capped skyline (one modest cap, rest unbounded)
        spec = api::SkylineSpec(loc);
        spec.preference.constraints.cost_caps.assign(d, kInf);
        spec.preference.constraints.cost_caps[qi % d] = 60.0;
        break;
      case 3:
        spec = api::TopKSpec(loc, 3, weights);
        break;
      default:
        spec = api::IncrementalSpec(loc, 3, weights);
        break;
    }
    specs.push_back(spec);
  }

  auto run_service = [&](bool enable) {
    exec::ServiceOptions options;
    options.num_workers = 2;
    options.pool_frames_per_worker = instance->pool->capacity();
    options.enable_prune_index = enable;
    auto service =
        exec::QueryService::Create(&instance->disk, instance->files, options)
            .value();
    std::vector<uint64_t> hashes;
    uint64_t misses = 0;
    for (const auto& spec : specs) {
      exec::QueryResult result = service->Submit(spec).get();
      MCN_CHECK(result.status.ok());
      hashes.push_back(result.result_hash);
      misses += result.stats.buffer_misses;
    }
    const exec::ServiceStats stats = service->Snapshot();
    service->Shutdown();
    return std::tuple<std::vector<uint64_t>, exec::ServiceStats, uint64_t>(
        hashes, stats, misses);
  };

  const auto [hashes_off, stats_off, misses_off] = run_service(false);
  const auto [hashes_on, stats_on, misses_on] = run_service(true);
  EXPECT_EQ(hashes_off, hashes_on);
  EXPECT_EQ(stats_off.prune_checked, 0u);
  EXPECT_GT(stats_on.prune_checked, 0u);
  EXPECT_GT(stats_on.prune_cut, 0u);
  EXPECT_LE(stats_on.prune_cut, stats_on.prune_checked);
}

}  // namespace
}  // namespace mcn
