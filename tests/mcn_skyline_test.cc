#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "mcn/algo/skyline_query.h"
#include "mcn/expand/engines.h"
#include "mcn/gen/facility_generator.h"
#include "test_util.h"

namespace mcn::algo {
namespace {

using expand::CeaEngine;
using expand::LsaEngine;
using expand::MemEngine;
using graph::EdgeKey;
using graph::Location;

std::set<graph::FacilityId> Ids(const std::vector<SkylineEntry>& entries) {
  std::set<graph::FacilityId> ids;
  for (const auto& e : entries) ids.insert(e.facility);
  return ids;
}

TEST(SkylineTinyTest, MatchesOracleOnHandGraph) {
  test::DiskFixture fx(test::TinyGraph(),
                       test::TinyFacilities(test::TinyGraph()), 64);
  for (const Location& q :
       {Location::AtNode(0), Location::AtNode(4), Location::AtNode(8),
        Location::OnEdge(EdgeKey(3, 6), 0.5)}) {
    auto oracle = test::OracleSkyline(fx.graph, fx.facilities, q);
    for (auto kind : {expand::EngineKind::kLsa, expand::EngineKind::kCea}) {
      auto engine = expand::MakeEngine(kind, fx.reader.get(), q).value();
      SkylineQuery query(engine.get());
      auto result = query.ComputeAll().value();
      EXPECT_EQ(Ids(result), oracle) << q.ToString();
    }
  }
}

TEST(SkylineTinyTest, ReportedCostsMatchOracle) {
  test::DiskFixture fx(test::TinyGraph(),
                       test::TinyFacilities(test::TinyGraph()), 64);
  Location q = Location::AtNode(0);
  auto oracle = test::OracleReachableCosts(fx.graph, fx.facilities, q);
  auto engine = expand::MakeEngine(expand::EngineKind::kCea, fx.reader.get(),
                                   q)
                    .value();
  SkylineQuery query(engine.get());
  auto result = query.ComputeAll().value();
  for (const SkylineEntry& e : result) {
    auto it = std::find(oracle.ids.begin(), oracle.ids.end(), e.facility);
    ASSERT_NE(it, oracle.ids.end());
    const graph::CostVector& exact =
        oracle.costs[it - oracle.ids.begin()];
    for (int i = 0; i < exact.dim(); ++i) {
      if ((e.known_mask >> i) & 1u) {
        EXPECT_NEAR(e.costs[i], exact[i], 1e-9);
      }
    }
  }
}

TEST(SkylineTinyTest, ProgressiveNextNeverRetracts) {
  test::DiskFixture fx(test::TinyGraph(),
                       test::TinyFacilities(test::TinyGraph()), 64);
  Location q = Location::AtNode(4);
  auto oracle = test::OracleSkyline(fx.graph, fx.facilities, q);
  auto engine =
      MemEngine::Create(&fx.graph, &fx.facilities, q).value();
  SkylineQuery query(engine.get());
  std::set<graph::FacilityId> seen;
  for (;;) {
    auto next = query.Next().value();
    if (!next.has_value()) break;
    // Every progressive report is already final skyline membership.
    EXPECT_TRUE(oracle.count(next->facility)) << next->facility;
    EXPECT_TRUE(seen.insert(next->facility).second);  // no duplicates
  }
  EXPECT_EQ(seen, oracle);
}

TEST(SkylineTinyTest, EmptyFacilitySet) {
  graph::MultiCostGraph g = test::TinyGraph();
  graph::FacilitySet empty;
  empty.Finalize();
  test::DiskFixture fx(std::move(g), std::move(empty), 64);
  auto engine = expand::MakeEngine(expand::EngineKind::kLsa, fx.reader.get(),
                                   Location::AtNode(0))
                    .value();
  SkylineQuery query(engine.get());
  EXPECT_TRUE(query.ComputeAll().value().empty());
}

TEST(SkylineTinyTest, SingleFacilityIsWholeSkyline) {
  graph::MultiCostGraph g = test::TinyGraph();
  graph::FacilitySet one;
  one.Add(g.FindEdge(4, 5).value(), 0.5);
  one.Finalize();
  test::DiskFixture fx(std::move(g), std::move(one), 64);
  auto engine = expand::MakeEngine(expand::EngineKind::kCea, fx.reader.get(),
                                   Location::AtNode(0))
                    .value();
  SkylineQuery query(engine.get());
  auto result = query.ComputeAll().value();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].facility, 0u);
}

TEST(SkylineTinyTest, CoLocatedFacilitiesAllSurvive) {
  // Three facilities at the same point: identical cost vectors; strict
  // dominance keeps all three (the paper's footnote-4 shortcut would not —
  // see DESIGN.md §3).
  graph::MultiCostGraph g = test::TinyGraph();
  graph::FacilitySet facs;
  graph::EdgeId e = g.FindEdge(4, 5).value();
  facs.Add(e, 0.5);
  facs.Add(e, 0.5);
  facs.Add(e, 0.5);
  facs.Finalize();
  test::DiskFixture fx(std::move(g), std::move(facs), 64);
  Location q = Location::AtNode(0);
  auto oracle = test::OracleSkyline(fx.graph, fx.facilities, q);
  EXPECT_EQ(oracle.size(), 3u);
  for (auto kind : {expand::EngineKind::kLsa, expand::EngineKind::kCea}) {
    auto engine = expand::MakeEngine(kind, fx.reader.get(), q).value();
    SkylineQuery query(engine.get());
    EXPECT_EQ(Ids(query.ComputeAll().value()), oracle);
  }
}

TEST(SkylineTinyTest, DisconnectedFacilitiesIgnored) {
  // Extra component with a facility: unreachable from q, not reported.
  graph::MultiCostGraph g(2);
  for (int i = 0; i < 4; ++i) g.AddNode(i, 0);
  ASSERT_TRUE(g.AddEdge(0, 1, graph::CostVector{1, 1}).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, graph::CostVector{1, 1}).ok());
  g.Finalize();
  graph::FacilitySet facs;
  facs.Add(g.FindEdge(0, 1).value(), 0.5);
  facs.Add(g.FindEdge(2, 3).value(), 0.5);
  facs.Finalize();
  test::DiskFixture fx(std::move(g), std::move(facs), 64);
  auto engine = expand::MakeEngine(expand::EngineKind::kLsa, fx.reader.get(),
                                   Location::AtNode(0))
                    .value();
  SkylineQuery query(engine.get());
  auto result = query.ComputeAll().value();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].facility, 0u);
}


TEST(SkylineTinyTest, FirstResultIsAFirstNearestNeighbor) {
  // Enhancement 1 (paper §IV-A): the first progressive report is the first
  // NN of some cost type, delivered before any facility is pinned.
  test::DiskFixture fx(test::TinyGraph(),
                       test::TinyFacilities(test::TinyGraph()), 64);
  Location q = Location::AtNode(0);
  auto costs = expand::AllFacilityCosts(fx.graph, fx.facilities, q);
  // First NN per cost type (by exact cost).
  std::set<graph::FacilityId> first_nns;
  for (int i = 0; i < 2; ++i) {
    graph::FacilityId best = 0;
    for (graph::FacilityId f = 1; f < fx.facilities.size(); ++f) {
      if (costs[f][i] < costs[best][i]) best = f;
    }
    first_nns.insert(best);
  }
  auto engine = expand::MakeEngine(expand::EngineKind::kCea, fx.reader.get(),
                                   q)
                    .value();
  SkylineQuery query(engine.get());
  auto first = query.Next().value();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first_nns.count(first->facility)) << first->facility;
}

TEST(SkylineTinyTest, DisabledFirstNnStillMatchesOracle) {
  test::DiskFixture fx(test::TinyGraph(),
                       test::TinyFacilities(test::TinyGraph()), 64);
  Location q = Location::AtNode(8);
  auto oracle = test::OracleSkyline(fx.graph, fx.facilities, q);
  SkylineOptions opts;
  opts.report_first_nn = false;
  auto engine = expand::MakeEngine(expand::EngineKind::kLsa, fx.reader.get(),
                                   q)
                    .value();
  SkylineQuery query(engine.get(), opts);
  EXPECT_EQ(Ids(query.ComputeAll().value()), oracle);
}

// ---------------------------------------------------------------------------
// Property sweep: LSA == CEA == Mem == oracle over random instances.

struct SweepParam {
  int d;
  gen::CostDistribution dist;
  uint64_t seed;
};

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string name = "d" + std::to_string(info.param.d);
  switch (info.param.dist) {
    case gen::CostDistribution::kIndependent:
      name += "_ind";
      break;
    case gen::CostDistribution::kCorrelated:
      name += "_corr";
      break;
    case gen::CostDistribution::kAntiCorrelated:
      name += "_anti";
      break;
  }
  name += "_s" + std::to_string(info.param.seed);
  return name;
}

class SkylineSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SkylineSweepTest, AllEnginesMatchOracle) {
  const SweepParam& p = GetParam();
  test::SmallConfig config;
  config.num_costs = p.d;
  config.distribution = p.dist;
  config.seed = p.seed;
  auto instance = test::MakeSmallInstance(config).value();

  Random rng(p.seed * 977 + 13);
  for (int qi = 0; qi < 3; ++qi) {
    Location q = instance->RandomQueryLocation(rng);
    auto oracle =
        test::OracleSkyline(instance->graph, instance->facilities, q);
    ASSERT_FALSE(oracle.empty());

    auto lsa = LsaEngine::Create(instance->reader.get(), q).value();
    SkylineQuery lsa_query(lsa.get());
    auto lsa_result = lsa_query.ComputeAll().value();

    auto cea = CeaEngine::Create(instance->reader.get(), q).value();
    SkylineQuery cea_query(cea.get());
    auto cea_result = cea_query.ComputeAll().value();

    auto mem = MemEngine::Create(&instance->graph, &instance->facilities, q)
                   .value();
    SkylineQuery mem_query(mem.get());
    auto mem_result = mem_query.ComputeAll().value();

    EXPECT_EQ(Ids(lsa_result), oracle) << "LSA, q=" << q.ToString();
    EXPECT_EQ(Ids(cea_result), oracle) << "CEA, q=" << q.ToString();
    EXPECT_EQ(Ids(mem_result), oracle) << "Mem, q=" << q.ToString();

    // LSA and CEA must report in the same order (identical pin order).
    ASSERT_EQ(lsa_result.size(), cea_result.size());
    for (size_t i = 0; i < lsa_result.size(); ++i) {
      EXPECT_EQ(lsa_result[i].facility, cea_result[i].facility);
    }
  }
}

TEST_P(SkylineSweepTest, EnhancementsDoNotChangeTheAnswer) {
  const SweepParam& p = GetParam();
  test::SmallConfig config;
  config.num_costs = p.d;
  config.distribution = p.dist;
  config.seed = p.seed + 1000;
  auto instance = test::MakeSmallInstance(config).value();

  Random rng(p.seed * 31 + 7);
  Location q = instance->RandomQueryLocation(rng);
  auto oracle =
      test::OracleSkyline(instance->graph, instance->facilities, q);

  for (bool first_nn : {false, true}) {
    for (bool filter : {false, true}) {
      for (bool stop : {false, true}) {
        SkylineOptions opts;
        opts.report_first_nn = first_nn;
        opts.use_facility_filter = filter;
        opts.stop_finished_expansions = stop;
        auto engine = CeaEngine::Create(instance->reader.get(), q).value();
        SkylineQuery query(engine.get(), opts);
        EXPECT_EQ(Ids(query.ComputeAll().value()), oracle)
            << "first_nn=" << first_nn << " filter=" << filter
            << " stop=" << stop;
      }
    }
  }
}

TEST_P(SkylineSweepTest, ProbePoliciesAgree) {
  const SweepParam& p = GetParam();
  test::SmallConfig config;
  config.num_costs = p.d;
  config.distribution = p.dist;
  config.seed = p.seed + 2000;
  auto instance = test::MakeSmallInstance(config).value();
  Random rng(p.seed * 53 + 3);
  Location q = instance->RandomQueryLocation(rng);
  auto oracle =
      test::OracleSkyline(instance->graph, instance->facilities, q);
  for (ProbePolicy policy :
       {ProbePolicy::kRoundRobin, ProbePolicy::kSmallestFrontier,
        ProbePolicy::kLargestFrontier}) {
    SkylineOptions opts;
    opts.probe_policy = policy;
    auto engine = MemEngine::Create(&instance->graph, &instance->facilities,
                                    q)
                      .value();
    SkylineQuery query(engine.get(), opts);
    EXPECT_EQ(Ids(query.ComputeAll().value()), oracle);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkylineSweepTest,
    ::testing::Values(
        SweepParam{2, gen::CostDistribution::kAntiCorrelated, 1},
        SweepParam{2, gen::CostDistribution::kIndependent, 2},
        SweepParam{2, gen::CostDistribution::kCorrelated, 3},
        SweepParam{3, gen::CostDistribution::kAntiCorrelated, 4},
        SweepParam{3, gen::CostDistribution::kIndependent, 5},
        SweepParam{3, gen::CostDistribution::kCorrelated, 6},
        SweepParam{4, gen::CostDistribution::kAntiCorrelated, 7},
        SweepParam{4, gen::CostDistribution::kIndependent, 8},
        SweepParam{4, gen::CostDistribution::kCorrelated, 9},
        SweepParam{5, gen::CostDistribution::kAntiCorrelated, 10},
        SweepParam{5, gen::CostDistribution::kIndependent, 11},
        SweepParam{5, gen::CostDistribution::kCorrelated, 12}),
    SweepName);

// ---------------------------------------------------------------------------
// Regression tests.

// Regression: a candidate whose only dominator is a *non-pinned* first-NN
// skyline member (excluded from further pops by the shrinking filter in the
// original formulation) must still be eliminated. These seeds reproduced
// exactly that false positive before the fix (DESIGN.md §3).
TEST(SkylineRegressionTest, NonPinnedFirstNnDominatorIsNotLost) {
  struct Case {
    int d;
    uint64_t seed;
  };
  for (const Case& c : {Case{2, 1}, Case{4, 7}, Case{5, 10}}) {
    test::SmallConfig config;
    config.num_costs = c.d;
    config.distribution = gen::CostDistribution::kAntiCorrelated;
    config.seed = c.seed;
    auto instance = test::MakeSmallInstance(config).value();
    Random rng(c.seed * 977 + 13);
    for (int qi = 0; qi < 3; ++qi) {
      Location q = instance->RandomQueryLocation(rng);
      auto oracle =
          test::OracleSkyline(instance->graph, instance->facilities, q);
      auto cea = CeaEngine::Create(instance->reader.get(), q).value();
      SkylineQuery query(cea.get());
      EXPECT_EQ(Ids(query.ComputeAll().value()), oracle)
          << "d=" << c.d << " seed=" << c.seed << " q=" << q.ToString();
    }
  }
}

// A crafted exact-tie threat: facility A is the first NN of cost 0 (reported
// directly, never pinned by the time B pins) and dominates facility B with a
// tie in cost 1. The deferred-pin drain must eliminate B.
TEST(SkylineRegressionTest, DeferredPinEliminatesTiedDominatedCandidate) {
  // Path graph: q=node0 -- n1 -- n2 -- n3, with facilities on the edges.
  graph::MultiCostGraph g(2);
  for (int i = 0; i < 4; ++i) g.AddNode(i, 0);
  // Edge costs chosen so that (with integer arithmetic, exactly):
  //   A on edge(0,1)@0.5: c(A) = (1, 4)
  //   B on edge(2,3)@0.5: c(B) = (9, 4)   -> A dominates B (tie in cost 1).
  graph::EdgeId e01 = g.AddEdge(0, 1, graph::CostVector{2, 8}).value();
  ASSERT_TRUE(g.AddEdge(1, 2, graph::CostVector{4, 1}).ok());
  graph::EdgeId e23 = g.AddEdge(2, 3, graph::CostVector{6, 6}).value();
  g.Finalize();
  graph::FacilitySet facs;
  graph::FacilityId fa = facs.Add(e01, 0.5);
  graph::FacilityId fb = facs.Add(e23, 0.5);
  facs.Finalize();
  ASSERT_EQ(fa, 0u);
  ASSERT_EQ(fb, 1u);

  test::DiskFixture fx(std::move(g), std::move(facs), 64);
  Location q = Location::AtNode(0);
  auto oracle = test::OracleSkyline(fx.graph, fx.facilities, q);
  EXPECT_EQ(oracle, std::set<graph::FacilityId>{fa});
  for (auto kind : {expand::EngineKind::kLsa, expand::EngineKind::kCea}) {
    auto engine = expand::MakeEngine(kind, fx.reader.get(), q).value();
    SkylineQuery query(engine.get());
    EXPECT_EQ(Ids(query.ComputeAll().value()), oracle);
  }
}

TEST(SkylineStatsTest, StatsAreConsistent) {
  test::SmallConfig config;
  config.seed = 321;
  auto instance = test::MakeSmallInstance(config).value();
  Random rng(5);
  Location q = instance->RandomQueryLocation(rng);
  auto cea = CeaEngine::Create(instance->reader.get(), q).value();
  SkylineQuery query(cea.get());
  auto result = query.ComputeAll().value();
  const auto& stats = query.stats();
  EXPECT_EQ(stats.skyline_size, result.size());
  EXPECT_TRUE(stats.reached_shrinking);
  EXPECT_GE(stats.facilities_seen, result.size());
  EXPECT_GE(stats.nn_pops, stats.facilities_seen);
  EXPECT_GT(stats.dominance_checks, 0u);
  EXPECT_GE(stats.candidates_peak, 1u);
  EXPECT_TRUE(query.done());
}

}  // namespace
}  // namespace mcn::algo
