#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "mcn/algo/topk_query.h"
#include "mcn/expand/engines.h"
#include "test_util.h"

namespace mcn::algo {
namespace {

using expand::CeaEngine;
using expand::LsaEngine;
using expand::MemEngine;
using graph::EdgeKey;
using graph::Location;

/// Scores must agree; ids may differ only within score ties.
void ExpectSameRanking(const std::vector<TopKEntry>& got,
                       const std::vector<TopKEntry>& expected) {
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].score, expected[i].score, 1e-9) << "rank " << i;
  }
  // Ids must match wherever the rank is unambiguous: strictly below the
  // k-th score (ties at the boundary are resolved arbitrarily, paper §III)
  // and unique within the expected ranking.
  if (expected.empty()) return;
  double kth = expected.back().score;
  for (size_t i = 0; i < got.size(); ++i) {
    if (std::fabs(expected[i].score - kth) < 1e-9) continue;
    bool tied = false;
    for (size_t j = 0; j < expected.size(); ++j) {
      if (i != j &&
          std::fabs(expected[i].score - expected[j].score) < 1e-9) {
        tied = true;
      }
    }
    if (!tied) {
      EXPECT_EQ(got[i].facility, expected[i].facility);
    }
  }
}

TEST(TopKTinyTest, MatchesOracleOnHandGraph) {
  test::DiskFixture fx(test::TinyGraph(),
                       test::TinyFacilities(test::TinyGraph()), 64);
  AggregateFn f = WeightedSum({0.7, 0.3});
  for (const Location& q :
       {Location::AtNode(0), Location::AtNode(8),
        Location::OnEdge(EdgeKey(4, 7), 0.25)}) {
    for (int k : {1, 2, 3, 5, 10}) {
      auto oracle = test::OracleTopK(fx.graph, fx.facilities, q, f, k);
      for (auto kind :
           {expand::EngineKind::kLsa, expand::EngineKind::kCea}) {
        auto engine = expand::MakeEngine(kind, fx.reader.get(), q).value();
        TopKOptions opts;
        opts.k = k;
        TopKQuery query(engine.get(), f, opts);
        auto result = query.Run().value();
        ExpectSameRanking(result, oracle);
      }
    }
  }
}

TEST(TopKTinyTest, KLargerThanFacilityCountReturnsAll) {
  test::DiskFixture fx(test::TinyGraph(),
                       test::TinyFacilities(test::TinyGraph()), 64);
  AggregateFn f = WeightedSum({0.5, 0.5});
  auto engine = expand::MakeEngine(expand::EngineKind::kCea, fx.reader.get(),
                                   Location::AtNode(0))
                    .value();
  TopKOptions opts;
  opts.k = 100;
  TopKQuery query(engine.get(), f, opts);
  auto result = query.Run().value();
  EXPECT_EQ(result.size(), fx.facilities.size());
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].score, result[i].score);
  }
}

TEST(TopKTinyTest, ResultVectorsAreComplete) {
  test::DiskFixture fx(test::TinyGraph(),
                       test::TinyFacilities(test::TinyGraph()), 64);
  AggregateFn f = WeightedSum({0.9, 0.1});
  Location q = Location::AtNode(4);
  auto oracle = test::OracleReachableCosts(fx.graph, fx.facilities, q);
  auto engine = expand::MakeEngine(expand::EngineKind::kLsa, fx.reader.get(),
                                   q)
                    .value();
  TopKOptions opts;
  opts.k = 3;
  TopKQuery query(engine.get(), f, opts);
  auto result = query.Run().value();
  for (const TopKEntry& e : result) {
    auto it = std::find(oracle.ids.begin(), oracle.ids.end(), e.facility);
    ASSERT_NE(it, oracle.ids.end());
    EXPECT_TRUE(
        e.costs.ApproxEquals(oracle.costs[it - oracle.ids.begin()], 1e-9));
    EXPECT_NEAR(e.score, f(e.costs), 1e-12);
  }
}

TEST(TopKTinyTest, EmptyFacilitySet) {
  graph::MultiCostGraph g = test::TinyGraph();
  graph::FacilitySet empty;
  empty.Finalize();
  test::DiskFixture fx(std::move(g), std::move(empty), 64);
  auto engine = expand::MakeEngine(expand::EngineKind::kLsa, fx.reader.get(),
                                   Location::AtNode(0))
                    .value();
  TopKQuery query(engine.get(), WeightedSum({0.5, 0.5}), TopKOptions{});
  EXPECT_TRUE(query.Run().value().empty());
}

TEST(TopKTinyTest, RejectsNonPositiveK) {
  test::DiskFixture fx(test::TinyGraph(),
                       test::TinyFacilities(test::TinyGraph()), 64);
  auto engine = expand::MakeEngine(expand::EngineKind::kLsa, fx.reader.get(),
                                   Location::AtNode(0))
                    .value();
  TopKOptions opts;
  opts.k = 0;
  EXPECT_DEATH(TopKQuery(engine.get(), WeightedSum({0.5, 0.5}), opts),
               "MCN_CHECK");
}


TEST(TopKTinyTest, NonLinearMonotoneAggregate) {
  // max() over the cost vector is increasingly monotone too; the algorithms
  // only assume monotonicity, not linearity.
  test::DiskFixture fx(test::TinyGraph(),
                       test::TinyFacilities(test::TinyGraph()), 64);
  AggregateFn f = [](const graph::CostVector& c) { return c.MaxComponent(); };
  Location q = Location::AtNode(4);
  auto oracle = test::OracleTopK(fx.graph, fx.facilities, q, f, 3);
  for (auto kind : {expand::EngineKind::kLsa, expand::EngineKind::kCea}) {
    auto engine = expand::MakeEngine(kind, fx.reader.get(), q).value();
    TopKOptions opts;
    opts.k = 3;
    TopKQuery query(engine.get(), f, opts);
    ExpectSameRanking(query.Run().value(), oracle);
  }
}

TEST(TopKTinyTest, StatsAreConsistent) {
  test::SmallConfig config;
  config.seed = 909;
  auto instance = test::MakeSmallInstance(config).value();
  Random rng(3);
  Location q = instance->RandomQueryLocation(rng);
  auto cea = CeaEngine::Create(instance->reader.get(), q).value();
  TopKOptions opts;
  opts.k = 4;
  TopKQuery query(cea.get(),
                  WeightedSum(test::TestWeights(config.num_costs, 1)), opts);
  auto result = query.Run().value();
  const auto& stats = query.stats();
  EXPECT_EQ(result.size(), 4u);
  EXPECT_TRUE(stats.reached_shrinking);
  EXPECT_GE(stats.facilities_seen, 4u);
  EXPECT_GE(stats.nn_pops, 4u);
}

// ---------------------------------------------------------------------------
// Property sweep.

struct SweepParam {
  int d;
  gen::CostDistribution dist;
  int k;
  uint64_t seed;
};

class TopKSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(TopKSweepTest, AllEnginesMatchOracle) {
  const SweepParam& p = GetParam();
  test::SmallConfig config;
  config.num_costs = p.d;
  config.distribution = p.dist;
  config.seed = p.seed;
  auto instance = test::MakeSmallInstance(config).value();
  AggregateFn f = WeightedSum(test::TestWeights(p.d, p.seed * 7 + 1));

  Random rng(p.seed * 131 + 5);
  for (int qi = 0; qi < 3; ++qi) {
    Location q = instance->RandomQueryLocation(rng);
    auto oracle =
        test::OracleTopK(instance->graph, instance->facilities, q, f, p.k);

    for (auto kind : {expand::EngineKind::kLsa, expand::EngineKind::kCea}) {
      auto engine =
          expand::MakeEngine(kind, instance->reader.get(), q).value();
      TopKOptions opts;
      opts.k = p.k;
      TopKQuery query(engine.get(), f, opts);
      auto result = query.Run().value();
      ExpectSameRanking(result, oracle);
    }
    auto mem = MemEngine::Create(&instance->graph, &instance->facilities, q)
                   .value();
    TopKOptions opts;
    opts.k = p.k;
    TopKQuery query(mem.get(), f, opts);
    ExpectSameRanking(query.Run().value(), oracle);
  }
}

TEST_P(TopKSweepTest, OptionsDoNotChangeTheAnswer) {
  const SweepParam& p = GetParam();
  test::SmallConfig config;
  config.num_costs = p.d;
  config.distribution = p.dist;
  config.seed = p.seed + 500;
  auto instance = test::MakeSmallInstance(config).value();
  AggregateFn f = WeightedSum(test::TestWeights(p.d, p.seed * 3 + 2));
  Random rng(p.seed * 17 + 1);
  Location q = instance->RandomQueryLocation(rng);
  auto oracle =
      test::OracleTopK(instance->graph, instance->facilities, q, f, p.k);

  for (bool filter : {false, true}) {
    for (bool stop : {false, true}) {
      for (bool lb : {false, true}) {
        TopKOptions opts;
        opts.k = p.k;
        opts.use_facility_filter = filter;
        opts.stop_finished_expansions = stop;
        opts.lower_bound_pruning = lb;
        auto engine = CeaEngine::Create(instance->reader.get(), q).value();
        TopKQuery query(engine.get(), f, opts);
        ExpectSameRanking(query.Run().value(), oracle);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopKSweepTest,
    ::testing::Values(
        SweepParam{2, gen::CostDistribution::kAntiCorrelated, 1, 21},
        SweepParam{2, gen::CostDistribution::kIndependent, 4, 22},
        SweepParam{2, gen::CostDistribution::kCorrelated, 8, 23},
        SweepParam{3, gen::CostDistribution::kAntiCorrelated, 4, 24},
        SweepParam{3, gen::CostDistribution::kIndependent, 16, 25},
        SweepParam{4, gen::CostDistribution::kAntiCorrelated, 2, 26},
        SweepParam{4, gen::CostDistribution::kCorrelated, 4, 27},
        SweepParam{5, gen::CostDistribution::kAntiCorrelated, 8, 28},
        SweepParam{5, gen::CostDistribution::kIndependent, 1, 29}));

}  // namespace
}  // namespace mcn::algo
