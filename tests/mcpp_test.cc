#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "mcn/common/random.h"
#include "mcn/gen/cost_generator.h"
#include "mcn/mcpp/pareto_paths.h"
#include "test_util.h"

namespace mcn::mcpp {
namespace {

using graph::CostVector;
using graph::MultiCostGraph;
using graph::NodeId;

/// Brute force: enumerate all simple paths s->t and keep the Pareto set of
/// their cost vectors. Exponential; only for tiny graphs.
std::vector<CostVector> BruteForceParetoCosts(const MultiCostGraph& g,
                                              NodeId s, NodeId t) {
  std::vector<CostVector> all;
  std::vector<bool> on_path(g.num_nodes(), false);
  CostVector acc(g.num_costs(), 0.0);
  std::function<void(NodeId)> dfs = [&](NodeId v) {
    if (v == t) {
      all.push_back(acc);
      return;
    }
    for (const graph::AdjacentEdge& adj : g.Neighbors(v)) {
      if (on_path[adj.neighbor]) continue;
      on_path[adj.neighbor] = true;
      CostVector saved = acc;
      acc = acc + g.edge(adj.edge).w;
      dfs(adj.neighbor);
      acc = saved;
      on_path[adj.neighbor] = false;
    }
  };
  on_path[s] = true;
  dfs(s);
  // Pareto-filter, dropping duplicate vectors.
  std::vector<CostVector> pareto;
  for (const CostVector& c : all) {
    bool keep = true;
    for (const CostVector& o : all) {
      if (o.Dominates(c)) {
        keep = false;
        break;
      }
    }
    if (keep &&
        std::find(pareto.begin(), pareto.end(), c) == pareto.end()) {
      pareto.push_back(c);
    }
  }
  std::sort(pareto.begin(), pareto.end(),
            [](const CostVector& a, const CostVector& b) {
              for (int i = 0; i < a.dim(); ++i) {
                if (a[i] != b[i]) return a[i] < b[i];
              }
              return false;
            });
  return pareto;
}

void ExpectSameCostSets(const std::vector<ParetoPath>& got,
                        const std::vector<CostVector>& expected) {
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(got[i].costs.ApproxEquals(expected[i], 1e-9))
        << "index " << i << ": " << got[i].costs.ToString() << " vs "
        << expected[i].ToString();
  }
}

void ValidatePaths(const MultiCostGraph& g, NodeId s, NodeId t,
                   const std::vector<ParetoPath>& paths) {
  for (const ParetoPath& p : paths) {
    ASSERT_GE(p.nodes.size(), 1u);
    EXPECT_EQ(p.nodes.front(), s);
    EXPECT_EQ(p.nodes.back(), t);
    CostVector sum(g.num_costs(), 0.0);
    for (size_t i = 1; i < p.nodes.size(); ++i) {
      auto e = g.FindEdge(p.nodes[i - 1], p.nodes[i]);
      ASSERT_TRUE(e.ok());
      sum = sum + g.edge(e.value()).w;
    }
    EXPECT_TRUE(sum.ApproxEquals(p.costs, 1e-9));
  }
  // Mutually incomparable.
  for (const ParetoPath& a : paths) {
    for (const ParetoPath& b : paths) {
      if (&a != &b) {
        EXPECT_FALSE(a.costs.Dominates(b.costs));
      }
    }
  }
}

TEST(McppTest, TinyGraphBothMethodsMatchBruteForce) {
  MultiCostGraph g = test::TinyGraph();
  for (NodeId t : {1u, 4u, 8u}) {
    auto brute = BruteForceParetoCosts(g, 0, t);
    for (Method method : {Method::kLabelSetting, Method::kLabelCorrecting}) {
      McppOptions opts;
      opts.method = method;
      auto paths = ParetoShortestPaths(g, 0, t, opts).value();
      ExpectSameCostSets(paths, brute);
      ValidatePaths(g, 0, t, paths);
    }
  }
}

TEST(McppTest, SourceEqualsTarget) {
  MultiCostGraph g = test::TinyGraph();
  auto paths = ParetoShortestPaths(g, 3, 3).value();
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].costs, CostVector(2, 0.0));
  EXPECT_EQ(paths[0].nodes, std::vector<NodeId>{3});
}

TEST(McppTest, UnreachableTargetGivesEmptySet) {
  MultiCostGraph g(2);
  g.AddNode(0, 0);
  g.AddNode(1, 0);
  g.AddNode(2, 0);
  ASSERT_TRUE(g.AddEdge(0, 1, CostVector{1, 1}).ok());
  g.Finalize();
  EXPECT_TRUE(ParetoShortestPaths(g, 0, 2).value().empty());
}

TEST(McppTest, SingleCostReducesToShortestPath) {
  MultiCostGraph g(1);
  Random rng(5);
  for (int i = 0; i < 12; ++i) g.AddNode(rng.NextDouble(), rng.NextDouble());
  for (int i = 1; i < 12; ++i) {
    ASSERT_TRUE(
        g.AddEdge(i, static_cast<NodeId>(rng.Uniform(i)),
                  CostVector{rng.UniformDouble(0.1, 5)})
            .ok());
  }
  g.Finalize();
  auto paths = ParetoShortestPaths(g, 0, 11).value();
  ASSERT_EQ(paths.size(), 1u);
  auto sp = expand::ShortestPath(g, 0, 0, 11).value();
  EXPECT_NEAR(paths[0].costs[0], sp.cost, 1e-9);
}

TEST(McppTest, RandomGraphsMethodsAgree) {
  Random rng(77);
  for (int iter = 0; iter < 15; ++iter) {
    int n = 10 + static_cast<int>(rng.Uniform(6));
    int d = 2 + static_cast<int>(rng.Uniform(2));
    MultiCostGraph g(d);
    for (int i = 0; i < n; ++i) g.AddNode(rng.NextDouble(), rng.NextDouble());
    for (int i = 1; i < n; ++i) {
      CostVector w = gen::GenerateEdgeCosts(
          rng, gen::CostDistribution::kAntiCorrelated, d, 1.0);
      ASSERT_TRUE(
          g.AddEdge(i, static_cast<NodeId>(rng.Uniform(i)), w).ok());
    }
    for (int extra = 0; extra < n / 2; ++extra) {
      NodeId a = static_cast<NodeId>(rng.Uniform(n));
      NodeId b = static_cast<NodeId>(rng.Uniform(n));
      if (a == b) continue;
      CostVector w = gen::GenerateEdgeCosts(
          rng, gen::CostDistribution::kAntiCorrelated, d, 1.0);
      (void)g.AddEdge(a, b, w);  // duplicate adds rejected; fine
    }
    g.Finalize();
    NodeId s = 0, t = static_cast<NodeId>(n - 1);
    auto brute = BruteForceParetoCosts(g, s, t);

    McppOptions setting;
    auto ls = ParetoShortestPaths(g, s, t, setting).value();
    ExpectSameCostSets(ls, brute);
    ValidatePaths(g, s, t, ls);

    McppOptions correcting;
    correcting.method = Method::kLabelCorrecting;
    auto lc = ParetoShortestPaths(g, s, t, correcting).value();
    ExpectSameCostSets(lc, brute);
  }
}

TEST(McppTest, TargetPruningDoesNotChangeResult) {
  MultiCostGraph g = test::TinyGraph();
  McppOptions with;
  McppOptions without;
  without.target_pruning = false;
  auto a = ParetoShortestPaths(g, 0, 8, with).value();
  auto b = ParetoShortestPaths(g, 0, 8, without).value();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].costs.ApproxEquals(b[i].costs, 1e-12));
  }
}

TEST(McppTest, LabelBudgetEnforced) {
  MultiCostGraph g = test::TinyGraph();
  McppOptions opts;
  opts.max_labels = 3;
  EXPECT_EQ(ParetoShortestPaths(g, 0, 8, opts).status().code(),
            StatusCode::kOutOfRange);
}

TEST(McppTest, InvalidArguments) {
  MultiCostGraph g = test::TinyGraph();
  EXPECT_FALSE(ParetoShortestPaths(g, 0, 99).ok());
  MultiCostGraph unfinalized(2);
  unfinalized.AddNode(0, 0);
  EXPECT_FALSE(ParetoShortestPaths(unfinalized, 0, 0).ok());
}

}  // namespace
}  // namespace mcn::mcpp
