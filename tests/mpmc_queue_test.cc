#include "mcn/exec/mpmc_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace mcn::exec {
namespace {

TEST(MpmcQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpmcQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(MpmcQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(MpmcQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(MpmcQueue<int>(64).capacity(), 64u);
  EXPECT_EQ(MpmcQueue<int>(65).capacity(), 128u);
}

TEST(MpmcQueueTest, SingleThreadFifo) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.TryPush(int{i}));
  int v = -1;
  EXPECT_FALSE(q.TryPush(99));  // full
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.TryPop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.TryPop(v));  // empty
}

TEST(MpmcQueueTest, WrapsAroundManyLaps) {
  MpmcQueue<int> q(4);
  int v = -1;
  for (int lap = 0; lap < 1000; ++lap) {
    ASSERT_TRUE(q.TryPush(int{lap}));
    ASSERT_TRUE(q.TryPush(lap + 1000000));
    ASSERT_TRUE(q.TryPop(v));
    EXPECT_EQ(v, lap);
    ASSERT_TRUE(q.TryPop(v));
    EXPECT_EQ(v, lap + 1000000);
  }
}

TEST(MpmcQueueTest, MoveOnlyElementsAndDropOnDestruction) {
  // Leftover elements must be destroyed by the queue's destructor.
  auto counter = std::make_shared<int>(0);
  struct Payload {
    std::shared_ptr<int> counter;
    Payload() = default;
    explicit Payload(std::shared_ptr<int> c) : counter(std::move(c)) {
      ++*counter;
    }
    Payload(Payload&&) = default;
    Payload& operator=(Payload&&) = default;
    ~Payload() {
      if (counter) --*counter;
    }
  };
  {
    MpmcQueue<Payload> q(8);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(q.TryPush(Payload(counter)));
    }
    Payload out;
    ASSERT_TRUE(q.TryPop(out));
    EXPECT_EQ(*counter, 5);  // 4 in the queue + `out`
  }
  EXPECT_EQ(*counter, 0);
}

TEST(MpmcQueueTest, ConcurrentProducersConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;
  MpmcQueue<uint64_t> q(64);
  std::atomic<uint64_t> popped_sum{0};
  std::atomic<int> popped_count{0};
  constexpr int kTotal = kProducers * kPerProducer;

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        uint64_t v = static_cast<uint64_t>(p) * kPerProducer + i;
        while (!q.TryPush(std::move(v))) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      uint64_t v;
      while (popped_count.load() < kTotal) {
        if (q.TryPop(v)) {
          popped_sum.fetch_add(v);
          popped_count.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(popped_count.load(), kTotal);
  // Sum of 0..kTotal-1: every element arrived exactly once.
  uint64_t expected =
      static_cast<uint64_t>(kTotal) * (kTotal - 1) / 2;
  EXPECT_EQ(popped_sum.load(), expected);
  uint64_t v;
  EXPECT_FALSE(q.TryPop(v));
}

TEST(MpmcQueueTest, PerProducerOrderIsPreserved) {
  // FIFO per producer: a single consumer must see each producer's values
  // in increasing order even with concurrent producers.
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 4000;
  MpmcQueue<uint64_t> q(32);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        uint64_t v = (static_cast<uint64_t>(p) << 32) | i;
        while (!q.TryPush(std::move(v))) std::this_thread::yield();
      }
    });
  }
  std::vector<int64_t> last_seen(kProducers, -1);
  int received = 0;
  while (received < kProducers * kPerProducer) {
    uint64_t v;
    if (!q.TryPop(v)) {
      std::this_thread::yield();
      continue;
    }
    int p = static_cast<int>(v >> 32);
    auto seq = static_cast<int64_t>(v & 0xFFFFFFFFu);
    EXPECT_LT(last_seen[p], seq);
    last_seen[p] = seq;
    ++received;
  }
  for (auto& t : producers) t.join();
}

}  // namespace
}  // namespace mcn::exec
