#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "mcn/algo/naive.h"
#include "test_util.h"

namespace mcn::algo {
namespace {

using graph::EdgeKey;
using graph::Location;

TEST(NaiveTest, AllCostsMatchOracle) {
  test::DiskFixture fx(test::TinyGraph(),
                       test::TinyFacilities(test::TinyGraph()), 64);
  Location q = Location::OnEdge(EdgeKey(4, 7), 0.5);
  auto oracle = test::OracleReachableCosts(fx.graph, fx.facilities, q);
  auto all = NaiveAllCosts(*fx.reader, q).value();
  ASSERT_EQ(all.size(), oracle.ids.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].facility, oracle.ids[i]);
    EXPECT_TRUE(all[i].costs.ApproxEquals(oracle.costs[i], 1e-9));
    EXPECT_EQ(all[i].known_mask, (1u << fx.graph.num_costs()) - 1);
  }
}

TEST(NaiveTest, SkylineMatchesOracle) {
  test::SmallConfig config;
  config.seed = 31;
  auto instance = test::MakeSmallInstance(config).value();
  Random rng(8);
  for (int qi = 0; qi < 3; ++qi) {
    Location q = instance->RandomQueryLocation(rng);
    auto oracle =
        test::OracleSkyline(instance->graph, instance->facilities, q);
    auto naive = NaiveSkyline(*instance->reader, q).value();
    std::set<graph::FacilityId> got;
    for (const auto& e : naive) got.insert(e.facility);
    EXPECT_EQ(got, oracle);
  }
}

TEST(NaiveTest, TopKMatchesOracle) {
  test::SmallConfig config;
  config.seed = 32;
  config.num_costs = 4;
  auto instance = test::MakeSmallInstance(config).value();
  AggregateFn f = WeightedSum(test::TestWeights(4, 55));
  Random rng(9);
  Location q = instance->RandomQueryLocation(rng);
  auto oracle =
      test::OracleTopK(instance->graph, instance->facilities, q, f, 6);
  auto naive = NaiveTopK(*instance->reader, q, f, 6).value();
  ASSERT_EQ(naive.size(), oracle.size());
  for (size_t i = 0; i < naive.size(); ++i) {
    EXPECT_NEAR(naive[i].score, oracle[i].score, 1e-9);
  }
}

TEST(NaiveTest, TopKRejectsBadK) {
  test::DiskFixture fx(test::TinyGraph(),
                       test::TinyFacilities(test::TinyGraph()), 64);
  EXPECT_FALSE(NaiveTopK(*fx.reader, Location::AtNode(0),
                         WeightedSum({1, 1}), 0)
                   .ok());
}

TEST(NaiveTest, ReadsNetworkDTimes) {
  // The strawman's defining property: it scans the whole MCN once per cost
  // type, so its adjacency requests are ~d * nodes even for easy queries.
  test::DiskFixture fx(test::TinyGraph(),
                       test::TinyFacilities(test::TinyGraph()), 64);
  fx.pool->ResetStats();
  NaiveSkyline(*fx.reader, Location::AtNode(0)).value();
  // 2 cost types * 9 nodes = 18 adjacency record reads, plus tree probes:
  // strictly more accesses than the node count.
  EXPECT_GT(fx.pool->stats().accesses(),
            2u * fx.graph.num_nodes());
}

}  // namespace
}  // namespace mcn::algo
