#include <gtest/gtest.h>

#include <algorithm>

#include "mcn/net/format.h"
#include "mcn/net/network_builder.h"
#include "mcn/net/network_reader.h"
#include "test_util.h"

namespace mcn::net {
namespace {

TEST(FormatTest, AdjRecordRoundTrip) {
  std::vector<AdjEntry> entries(3);
  entries[0].neighbor = 7;
  entries[0].fac = FacRef{12, 3, 2};
  entries[0].w = graph::CostVector{1.5, 2.5};
  entries[1].neighbor = 9;
  entries[1].w = graph::CostVector{0.0, 4.0};
  entries[2].neighbor = 1;
  entries[2].fac = FacRef{0, 0, 1};
  entries[2].w = graph::CostVector{3.25, 0.125};

  auto bytes = EncodeAdjRecord(42, entries, 2);
  EXPECT_EQ(bytes.size(), AdjRecordBytes(3, 2));

  std::vector<AdjEntry> decoded;
  graph::NodeId node = DecodeAdjRecord(bytes, 2, &decoded);
  EXPECT_EQ(node, 42u);
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0].neighbor, 7u);
  EXPECT_EQ(decoded[0].fac.page, 12u);
  EXPECT_EQ(decoded[0].fac.slot, 3);
  EXPECT_EQ(decoded[0].fac.count, 2);
  EXPECT_EQ(decoded[0].w, (graph::CostVector{1.5, 2.5}));
  EXPECT_TRUE(decoded[1].fac.empty());
  EXPECT_EQ(decoded[2].w[1], 0.125);
}

TEST(FormatTest, FacRecordRoundTrip) {
  std::vector<FacilityOnEdge> facs{{10, 0.25}, {11, 0.75}, {900, 1.0}};
  auto bytes = EncodeFacRecord(graph::EdgeKey(8, 3), facs);
  EXPECT_EQ(bytes.size(), FacRecordBytes(3));
  std::vector<FacilityOnEdge> decoded;
  graph::EdgeKey key = DecodeFacRecord(bytes, &decoded);
  EXPECT_EQ(key, graph::EdgeKey(3, 8));
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0].facility, 10u);
  EXPECT_EQ(decoded[1].frac, 0.75);
}

TEST(FormatTest, RecordPosPacking) {
  RecordPos p{123456, 77};
  RecordPos q = RecordPos::Unpack(p.Pack());
  EXPECT_EQ(q.page, 123456u);
  EXPECT_EQ(q.slot, 77);
}

class NetStoreTest : public ::testing::Test {
 protected:
  NetStoreTest()
      : fixture_(test::TinyGraph(),
                 test::TinyFacilities(test::TinyGraph()), 64) {}

  test::DiskFixture fixture_;
};

TEST_F(NetStoreTest, MetadataMatches) {
  EXPECT_EQ(fixture_.files.num_nodes, fixture_.graph.num_nodes());
  EXPECT_EQ(fixture_.files.num_edges, fixture_.graph.num_edges());
  EXPECT_EQ(fixture_.files.num_facilities, fixture_.facilities.size());
  EXPECT_EQ(fixture_.files.num_costs, 2);
  EXPECT_GT(fixture_.files.total_pages, 0u);
}

TEST_F(NetStoreTest, AdjacencyMatchesGraph) {
  const auto& g = fixture_.graph;
  std::vector<AdjEntry> entries;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_TRUE(fixture_.reader->GetAdjacency(v, &entries).ok());
    auto neighbors = g.Neighbors(v);
    ASSERT_EQ(entries.size(), neighbors.size()) << "node " << v;
    for (const AdjEntry& e : entries) {
      auto it = std::find_if(neighbors.begin(), neighbors.end(),
                             [&](const graph::AdjacentEdge& adj) {
                               return adj.neighbor == e.neighbor;
                             });
      ASSERT_NE(it, neighbors.end());
      EXPECT_EQ(e.w, g.edge(it->edge).w);
      EXPECT_EQ(e.fac.count, fixture_.facilities.OnEdge(it->edge).size());
    }
  }
}

TEST_F(NetStoreTest, FacilityRecordsMatch) {
  const auto& g = fixture_.graph;
  std::vector<AdjEntry> entries;
  std::vector<FacilityOnEdge> facs;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_TRUE(fixture_.reader->GetAdjacency(v, &entries).ok());
    for (const AdjEntry& e : entries) {
      if (e.fac.empty()) continue;
      ASSERT_TRUE(fixture_.reader
                      ->GetFacilities(graph::EdgeKey(v, e.neighbor), e.fac,
                                      &facs)
                      .ok());
      graph::EdgeId edge = g.FindEdge(v, e.neighbor).value();
      auto expected = fixture_.facilities.OnEdge(edge);
      ASSERT_EQ(facs.size(), expected.size());
      for (size_t i = 0; i < facs.size(); ++i) {
        EXPECT_EQ(facs[i].facility, expected[i]);
        EXPECT_EQ(facs[i].frac, fixture_.facilities[expected[i]].frac);
      }
    }
  }
}

TEST_F(NetStoreTest, LocateFacilityEdge) {
  const auto& g = fixture_.graph;
  for (graph::FacilityId f = 0; f < fixture_.facilities.size(); ++f) {
    auto key = fixture_.reader->LocateFacilityEdge(f).value();
    const graph::EdgeRecord& er = g.edge(fixture_.facilities[f].edge);
    EXPECT_EQ(key, graph::EdgeKey(er.u, er.v));
  }
  EXPECT_FALSE(fixture_.reader->LocateFacilityEdge(9999).ok());
}

TEST_F(NetStoreTest, FindEdgeEntry) {
  auto entry = fixture_.reader->FindEdgeEntry(0, 1).value();
  EXPECT_EQ(entry.neighbor, 1u);
  EXPECT_EQ(entry.w, (graph::CostVector{4.0, 1.0}));
  EXPECT_FALSE(fixture_.reader->FindEdgeEntry(0, 8).ok());
}

TEST_F(NetStoreTest, ReadsGoThroughBufferPool) {
  fixture_.pool->ResetStats();
  std::vector<AdjEntry> entries;
  ASSERT_TRUE(fixture_.reader->GetAdjacency(4, &entries).ok());
  EXPECT_GT(fixture_.pool->stats().accesses(), 0u);
}

TEST_F(NetStoreTest, OutOfRangeNodeFails) {
  std::vector<AdjEntry> entries;
  EXPECT_FALSE(fixture_.reader->GetAdjacency(999, &entries).ok());
}

TEST(NetworkBuilderTest, RequiresFinalizedInputs) {
  graph::MultiCostGraph g(1);
  g.AddNode(0, 0);
  graph::FacilitySet f;
  f.Finalize();
  storage::DiskManager disk;
  EXPECT_EQ(net::BuildNetwork(&disk, g, f).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(NetworkBuilderTest, IsolatedNodesAndEmptyFacilities) {
  graph::MultiCostGraph g(2);
  g.AddNode(0, 0);
  g.AddNode(1, 1);  // no edges at all
  g.Finalize();
  graph::FacilitySet f;
  f.Finalize();
  storage::DiskManager disk;
  auto files = net::BuildNetwork(&disk, g, f);
  ASSERT_TRUE(files.ok()) << files.status().ToString();
  storage::BufferPool pool(&disk, 8);
  net::NetworkReader reader(files.value(), &pool);
  std::vector<AdjEntry> entries;
  ASSERT_TRUE(reader.GetAdjacency(0, &entries).ok());
  EXPECT_TRUE(entries.empty());
}

}  // namespace
}  // namespace mcn::net
