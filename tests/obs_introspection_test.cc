// Wire-served introspection + flight recorder (DESIGN.md §11): a
// kGetMetrics TCP scrape must match the in-process MetricsSnapshot
// counter for counter, a kGetTrace scrape of a K=4 sharded run must
// contain the taxonomy the acceptance trace needs (queue wait, expansion
// turns, probe fetches with miss/remote attribution, wire codec spans),
// and a flight-recorder digest's replay_hex must decode to a kExecute
// frame whose re-execution reproduces the recorded result hash.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mcn/api/client.h"
#include "mcn/api/server.h"
#include "mcn/api/wire.h"
#include "mcn/exec/query_service.h"
#include "mcn/exec/service_stats.h"
#include "mcn/gen/workload.h"
#include "mcn/obs/flight_recorder.h"
#include "mcn/obs/metrics.h"
#include "mcn/obs/trace.h"
#include "test_util.h"

namespace mcn::api {
namespace {

gen::ExperimentConfig SmallConfig(uint64_t seed) {
  gen::ExperimentConfig config;
  config.nodes = 400;
  config.edges = 520;
  config.facilities = 60;
  config.clusters = 4;
  config.num_costs = 3;
  config.buffer_pct = 1.0;
  config.seed = seed;
  return config;
}

struct Endpoint {
  std::unique_ptr<gen::ShardedInstance> instance;
  std::unique_ptr<exec::QueryService> service;
  std::unique_ptr<Server> server;

  static Endpoint Make(int num_shards, int workers,
                       obs::FlightRecorder* recorder = nullptr,
                       uint64_t seed = 7) {
    Endpoint ep;
    auto built = gen::BuildShardedInstance(SmallConfig(seed), num_shards);
    EXPECT_TRUE(built.ok());
    ep.instance = std::move(built).value();
    exec::ServiceOptions opts;
    opts.num_workers = workers;
    opts.queue_capacity = 64;
    opts.pool_frames_per_worker = ep.instance->pool_frames;
    opts.per_query_parallelism = 2;  // lets spec.parallelism=2 pool turns
    opts.flight_recorder = recorder;
    auto service = exec::QueryService::Create(&ep.instance->storage,
                                              ep.instance->files, opts);
    EXPECT_TRUE(service.ok());
    ep.service = std::move(service).value();
    auto server = Server::Start(ep.service.get(), {});
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    ep.server = std::move(server).value();
    return ep;
  }
};

std::vector<QuerySpec> MixedSpecs(const gen::ShardedInstance& instance,
                                  uint64_t seed, int count,
                                  int32_t parallelism) {
  Random rng(seed);
  const int d = instance.graph.num_costs();
  std::vector<QuerySpec> specs;
  for (int i = 0; i < count; ++i) {
    const graph::Location loc = instance.RandomQueryLocation(rng);
    QuerySpec spec = i % 2 == 0
                         ? SkylineSpec(loc)
                         : TopKSpec(loc, 4, test::TestWeights(d, seed + i));
    spec.engine = i % 2 == 0 ? expand::EngineKind::kCea
                             : expand::EngineKind::kLsa;
    spec.parallelism = parallelism;
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(ObsIntrospectionTest, WireMetricsScrapeMatchesInProcessSnapshot) {
  Endpoint ep = Endpoint::Make(/*num_shards=*/2, /*workers=*/2);
  auto client = Client::Connect("127.0.0.1", ep.server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (const QuerySpec& spec :
       MixedSpecs(*ep.instance, 41, 10, /*parallelism=*/0)) {
    auto response = (*client)->Execute(spec);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response.value().status.ok());
  }

  auto scraped = (*client)->GetMetrics();
  ASSERT_TRUE(scraped.ok()) << scraped.status().ToString();
  const obs::Snapshot local = ep.service->MetricsSnapshot();

  // The service is quiesced (every Execute returned), so every counter
  // and histogram must agree exactly; only clock-derived gauges (uptime)
  // may drift between the two snapshots.
  EXPECT_EQ(scraped.value().CounterValue(exec::metric_names::kCompleted),
            10u);
  for (const obs::CounterRow& row : local.counters) {
    EXPECT_EQ(scraped.value().CounterValue(row.name, ~0ull), row.value)
        << "counter " << row.name;
  }
  for (const obs::HistogramSnapshot& h : local.histograms) {
    const obs::HistogramSnapshot* wire =
        scraped.value().FindHistogram(h.name);
    ASSERT_NE(wire, nullptr) << "histogram " << h.name;
    EXPECT_EQ(wire->count, h.count) << h.name;
    EXPECT_EQ(wire->sum, h.sum) << h.name;
    EXPECT_EQ(wire->buckets, h.buckets) << h.name;
  }
  for (const obs::GaugeRow& row : local.gauges) {
    EXPECT_NE(scraped.value().GaugeValue(row.name, -1.0), -1.0)
        << "gauge " << row.name << " missing from the scrape";
  }
  // The thin stats view over the scrape reads like the native one.
  const exec::ServiceStats stats =
      exec::ServiceStatsFromSnapshot(scraped.value());
  EXPECT_EQ(stats.completed, 10u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(ObsIntrospectionTest, ShardedWireTraceCarriesTheFullTaxonomy) {
  obs::Tracer::Global().Enable();
  Endpoint ep = Endpoint::Make(/*num_shards=*/4, /*workers=*/3);
  auto client = Client::Connect("127.0.0.1", ep.server->port());
  ASSERT_TRUE(client.ok());
  // parallelism=2 exercises the pooled probe scheduler, whose per-turn
  // spans and cross-thread fetch attribution are the hard part.
  for (const QuerySpec& spec :
       MixedSpecs(*ep.instance, 99, 8, /*parallelism=*/2)) {
    auto response = (*client)->Execute(spec);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response.value().status.ok());
  }
  auto trace = (*client)->GetTrace();
  obs::Tracer::Global().Disable();
  obs::Tracer::Global().Clear();
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();

  const std::string& json = trace.value();
#if MCN_OBS
  for (const char* name :
       {"\"query\"", "\"queue_wait\"", "\"exec\"", "\"expansion_turn\"",
        "\"probe_fetch\"", "\"wire_decode\"", "\"wire_encode\""}) {
    EXPECT_NE(json.find(name), std::string::npos)
        << name << " missing from the wire-scraped trace";
  }
  // K=4 with per-shard pools must surface both attribution flags
  // somewhere in the mix: pool misses on first touches, and remote
  // routed fetches once expansion crosses a partition boundary.
  EXPECT_NE(json.find("\"miss\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"remote\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"pooled\": 1"), std::string::npos);
#else
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
#endif
}

TEST(ObsIntrospectionTest, FlightRecorderReplayFrameReproducesTheQuery) {
  obs::FlightRecorder::Options options;
  options.capacity = 8;
  options.slow_query_ms = 0;  // record digests only, no slow log
  obs::FlightRecorder recorder(options);
  Endpoint ep = Endpoint::Make(/*num_shards=*/2, /*workers=*/2, &recorder);

  auto client = Client::Connect("127.0.0.1", ep.server->port());
  ASSERT_TRUE(client.ok());
  const auto specs = MixedSpecs(*ep.instance, 55, 12, /*parallelism=*/0);
  std::vector<uint64_t> hashes;
  for (const QuerySpec& spec : specs) {
    auto response = (*client)->Execute(spec);
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response.value().status.ok());
    hashes.push_back(response.value().result_hash);
  }

  // The ring holds the last `capacity` digests, oldest first, seq
  // strictly monotone.
  const std::vector<obs::QueryDigest> recent = recorder.Recent();
  ASSERT_EQ(recent.size(), options.capacity);
  EXPECT_EQ(recorder.recorded(), specs.size());
  EXPECT_EQ(recorder.slow_logged(), 0u);
  for (size_t i = 0; i < recent.size(); ++i) {
    if (i > 0) EXPECT_EQ(recent[i].seq, recent[i - 1].seq + 1);
    EXPECT_EQ(recent[i].status, "Ok");
    EXPECT_EQ(recent[i].result_hash,
              hashes[specs.size() - recent.size() + i]);

    // replay_hex is a complete kExecute frame: length prefix + payload.
    std::string frame;
    ASSERT_TRUE(obs::FromHex(recent[i].spec_frame_hex, &frame));
    ASSERT_GT(frame.size(), 4u);
    auto decoded = DecodeRequestPayload(frame.substr(4));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().type, MsgType::kExecute);

    // Byte-for-byte replay semantics: re-running the decoded spec yields
    // the recorded hash (what tools/replay_query.py checks end to end).
    exec::QueryResult replayed =
        ep.service->Submit(decoded.value().spec).get();
    ASSERT_TRUE(replayed.status.ok());
    EXPECT_EQ(replayed.result_hash, recent[i].result_hash)
        << "digest seq " << recent[i].seq;

    // The digest's JSON line carries the replay frame and timings.
    const std::string line = obs::DigestToJson(recent[i]);
    EXPECT_NE(line.find("\"replay_hex\""), std::string::npos);
    EXPECT_NE(line.find("\"latency_ms\""), std::string::npos);
    EXPECT_NE(line.find("\"result_hash\""), std::string::npos);
  }
}

TEST(ObsIntrospectionTest, HexRoundTripsArbitraryBytes) {
  std::string bytes;
  for (int i = 0; i < 256; ++i) bytes.push_back(static_cast<char>(i));
  const std::string hex = obs::ToHex(bytes);
  EXPECT_EQ(hex.size(), 512u);
  std::string back;
  ASSERT_TRUE(obs::FromHex(hex, &back));
  EXPECT_EQ(back, bytes);
  EXPECT_FALSE(obs::FromHex("abc", &back));   // odd length
  EXPECT_FALSE(obs::FromHex("zz", &back));    // non-hex
  ASSERT_TRUE(obs::FromHex("", &back));
  EXPECT_TRUE(back.empty());
}

}  // namespace
}  // namespace mcn::api
