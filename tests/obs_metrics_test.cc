// Metrics-registry invariants (DESIGN.md §11): the log-bucket geometry
// partitions the uint64 range with the documented ≤ 12.5% width bound,
// histogram snapshots/merges agree with a sorted-vector oracle, counters
// sum exactly under concurrent writers, and Registry/Snapshot lookup and
// merge semantics hold.
#include "mcn/obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "mcn/common/random.h"
#include "test_util.h"

namespace mcn::obs {
namespace {

TEST(HistogramBucketsTest, IdentityBucketsAreExact) {
  for (uint64_t v = 0; v < Histogram::kIdentityBuckets; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), static_cast<int>(v));
    EXPECT_EQ(Histogram::BucketLowerBound(static_cast<int>(v)), v);
  }
}

TEST(HistogramBucketsTest, BoundsFormAPartition) {
  // Every bucket: its lower bound maps back to it, its last value maps to
  // it, and buckets tile the range with no gap or overlap.
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    const uint64_t lo = Histogram::BucketLowerBound(i);
    const uint64_t hi = Histogram::BucketUpperBound(i);
    ASSERT_LT(lo, hi) << "bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(lo), i) << "bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(hi - 1), i) << "bucket " << i;
    if (i + 1 < Histogram::kNumBuckets) {
      EXPECT_EQ(Histogram::BucketLowerBound(i + 1), hi) << "bucket " << i;
    }
  }
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), Histogram::kNumBuckets - 1);
}

TEST(HistogramBucketsTest, WidthBoundsQuantileError) {
  // Above the identity range every bucket is at most lo/8 wide — the
  // bound behind the documented ≤ 12.5% relative quantile error.
  for (int i = Histogram::kIdentityBuckets; i < Histogram::kNumBuckets - 1;
       ++i) {
    const uint64_t lo = Histogram::BucketLowerBound(i);
    const uint64_t width = Histogram::BucketUpperBound(i) - lo;
    EXPECT_LE(width, lo / 8) << "bucket " << i;
  }
}

TEST(HistogramBucketsTest, IndexIsMonotoneInValue) {
  const uint64_t seed = test::AnnounceSeed("HistogramBuckets.Monotone");
  Random rng(seed);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform pairs so every octave gets exercised.
    const uint64_t a = rng.Next() >> (rng.Next() % 64);
    const uint64_t b = rng.Next() >> (rng.Next() % 64);
    const auto [lo, hi] = std::minmax(a, b);
    EXPECT_LE(Histogram::BucketIndex(lo), Histogram::BucketIndex(hi))
        << lo << " vs " << hi;
  }
}

HistogramSnapshot Snap(const Histogram& h, const char* name = "h") {
  HistogramSnapshot s;
  s.name = name;
  h.SnapshotInto(&s.buckets, &s.count, &s.sum);
  return s;
}

TEST(HistogramTest, QuantilesMatchSortedVectorOracle) {
  const uint64_t seed = test::AnnounceSeed("Histogram.QuantileOracle");
  Random rng(seed);
  Histogram h(4);
  std::vector<uint64_t> values;
  uint64_t sum = 0;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.Next() >> (rng.Next() % 56);  // log-uniform
    values.push_back(v);
    sum += v;
    h.Record(v, static_cast<int>(rng.Next() % 4));  // slots must not matter
  }
  std::sort(values.begin(), values.end());

  const HistogramSnapshot s = Snap(h);
  EXPECT_EQ(s.count, values.size());
  EXPECT_EQ(s.sum, sum);
  // Sparse form: ascending indices, nonzero counts, total adds up.
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < s.buckets.size(); ++i) {
    EXPECT_GT(s.buckets[i].second, 0u);
    if (i > 0) EXPECT_LT(s.buckets[i - 1].first, s.buckets[i].first);
    bucket_total += s.buckets[i].second;
  }
  EXPECT_EQ(bucket_total, s.count);

  for (double q : {0.01, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    // Nearest-rank oracle: the rank-ceil(q*n) smallest sample.
    const size_t rank = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(q * values.size())));
    const uint64_t oracle = values[std::min(rank, values.size()) - 1];
    const double est = s.ValueAtQuantile(q);
    // The estimate must land inside the oracle's own bucket — the
    // strongest statement the bucketing admits, and it implies the
    // ≤ 12.5% relative-error bound.
    const int idx = Histogram::BucketIndex(oracle);
    EXPECT_GE(est, static_cast<double>(Histogram::BucketLowerBound(idx)))
        << "q=" << q;
    EXPECT_LE(est, static_cast<double>(Histogram::BucketUpperBound(idx)))
        << "q=" << q;
  }
}

TEST(HistogramTest, MergeMatchesSingleRecorder) {
  const uint64_t seed = test::AnnounceSeed("Histogram.MergeOracle");
  Random rng(seed ^ 0x9E3779B97F4A7C15ull);
  Histogram a(2), b(2), combined(1);
  for (int i = 0; i < 3000; ++i) {
    const uint64_t v = rng.Next() >> (rng.Next() % 48);
    (i % 2 == 0 ? a : b).Record(v);
    combined.Record(v);
  }
  HistogramSnapshot sa = Snap(a), sb = Snap(b), sc = Snap(combined);
  sa.Merge(sb);
  EXPECT_EQ(sa.count, sc.count);
  EXPECT_EQ(sa.sum, sc.sum);
  EXPECT_EQ(sa.buckets, sc.buckets);
  for (double q : {0.5, 0.95}) {
    EXPECT_DOUBLE_EQ(sa.ValueAtQuantile(q), sc.ValueAtQuantile(q));
  }
}

TEST(CounterTest, ConcurrentAddsSumExactly) {
  Counter c(8);
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add(1, t);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
  // Per-slot attribution is exact when each writer owns a slot.
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(c.SlotValue(t), kPerThread);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, SlotCountClampsToPowerOfTwo) {
  EXPECT_EQ(ClampSlots(0), 1);
  EXPECT_EQ(ClampSlots(1), 1);
  EXPECT_EQ(ClampSlots(3), 4);
  EXPECT_EQ(ClampSlots(kMaxSlots), kMaxSlots);
  EXPECT_EQ(ClampSlots(kMaxSlots + 1), kMaxSlots);
  // Out-of-range slot ids wrap via the mask instead of faulting.
  Counter c(4);
  c.Add(5, 1 << 20);
  EXPECT_EQ(c.Value(), 5u);
}

TEST(RegistryTest, InstrumentPointersAreStableAndShared) {
  Registry registry(4);
  Counter* c = registry.GetCounter("mcn.test.counter");
  Gauge* g = registry.GetGauge("mcn.test.gauge");
  Histogram* h = registry.GetHistogram("mcn.test.hist");
  EXPECT_EQ(registry.GetCounter("mcn.test.counter"), c);
  EXPECT_EQ(registry.GetGauge("mcn.test.gauge"), g);
  EXPECT_EQ(registry.GetHistogram("mcn.test.hist"), h);

  c->Add(7);
  g->Set(2.5);
  h->Record(100);
  h->Record(3);

  const Snapshot s = registry.TakeSnapshot();
  EXPECT_EQ(s.CounterValue("mcn.test.counter"), 7u);
  EXPECT_EQ(s.CounterValue("absent", 42), 42u);
  EXPECT_DOUBLE_EQ(s.GaugeValue("mcn.test.gauge"), 2.5);
  const HistogramSnapshot* hs = s.FindHistogram("mcn.test.hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 2u);
  EXPECT_EQ(hs->sum, 103u);
  EXPECT_EQ(s.FindHistogram("absent"), nullptr);

  registry.ResetAll();
  const Snapshot zero = registry.TakeSnapshot();
  EXPECT_EQ(zero.CounterValue("mcn.test.counter"), 0u);
  EXPECT_EQ(zero.FindHistogram("mcn.test.hist")->count, 0u);
}

TEST(SnapshotTest, MergeSumsCountersAndKeepsLastGauge) {
  Snapshot a, b;
  a.AddCounter("c1", 10);
  a.AddCounter("only_a", 1);
  a.SetGauge("g", 1.0);
  b.AddCounter("c1", 5);
  b.AddCounter("only_b", 2);
  b.SetGauge("g", 9.0);

  a.Merge(b);
  EXPECT_EQ(a.CounterValue("c1"), 15u);
  EXPECT_EQ(a.CounterValue("only_a"), 1u);
  EXPECT_EQ(a.CounterValue("only_b"), 2u);
  EXPECT_DOUBLE_EQ(a.GaugeValue("g"), 9.0);  // last write wins

  // AddCounter sums into an existing same-named row.
  a.AddCounter("c1", 1);
  EXPECT_EQ(a.CounterValue("c1"), 16u);
}

TEST(RegistryTest, DefaultIsProcessWideSingleton) {
  EXPECT_EQ(&Registry::Default(), &Registry::Default());
  // A service-scoped registry never bleeds into the default one.
  Registry scoped(2);
  scoped.GetCounter("mcn.test.scoped")->Add(1);
  EXPECT_EQ(Registry::Default().TakeSnapshot().CounterValue(
                "mcn.test.scoped", 77),
            77u);
}

}  // namespace
}  // namespace mcn::obs
