// Trace-layer invariants (DESIGN.md §11): per-thread rings wrap keeping
// the most recent events, concurrent writers + a live exporter are
// data-race-free (this test is in the TSan stress set), and
// ExportChromeJson always emits a syntactically valid Chrome trace_event
// document — verified by parsing it back with a minimal JSON parser, not
// by substring luck.
#include "mcn/obs/trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace mcn::obs {
namespace {

// ----------------------------------------------------------- mini JSON
// A strict recursive-descent validator for the JSON subset the exporter
// emits (objects, arrays, strings without escapes beyond \", numbers,
// bools). On success, counts the elements of the top-level "traceEvents"
// array and records which "name" values appeared.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Validate() {
    SkipWs();
    if (!ParseValue(/*depth=*/0)) return false;
    SkipWs();
    return pos_ == s_.size();
  }

  int trace_events() const { return trace_events_; }
  bool SawName(const std::string& name) const {
    for (const auto& n : names_) {
      if (n == name) return true;
    }
    return false;
  }

 private:
  bool ParseValue(int depth) {
    if (depth > 32 || pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        std::string unused;
        return ParseString(&unused);
      }
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseObject(int depth) {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      const size_t value_start = pos_;
      if (!ParseValue(depth + 1)) return false;
      if (key == "traceEvents" && depth == 0) {
        trace_events_ = CountTopLevelElements(value_start);
      }
      if (key == "name") {
        // The value just parsed was a string: re-slice it.
        std::string name = s_.substr(value_start, pos_ - value_start);
        if (name.size() >= 2) names_.push_back(name.substr(1, name.size() - 2));
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(int depth) {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!ParseValue(depth + 1)) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString(std::string* out) {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        ++pos_;
      }
      out->push_back(s_[pos_]);
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool ParseNumber() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    const std::string want(lit);
    if (s_.compare(pos_, want.size(), want) != 0) return false;
    pos_ += want.size();
    return true;
  }

  int CountTopLevelElements(size_t array_start) const {
    // The value at array_start..pos_ is a validated array: count its
    // depth-1 commas (no strings in the exporter contain commas that
    // matter here because we track string state).
    if (s_[array_start] != '[') return -1;
    int depth = 0, count = 0;
    bool in_string = false, any = false;
    for (size_t i = array_start; i < pos_; ++i) {
      const char c = s_[i];
      if (in_string) {
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      if (c == '"') {
        if (depth == 1) any = true;
        in_string = true;
      } else if (c == '[' || c == '{') {
        if (depth == 1) any = true;
        ++depth;
      } else if (c == ']' || c == '}') {
        --depth;
      } else if (c == ',' && depth == 1) {
        ++count;
      } else if (depth == 1 && !std::isspace(static_cast<unsigned char>(c))) {
        any = true;
      }
    }
    return any ? count + 1 : 0;
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  size_t pos_ = 0;
  int trace_events_ = -1;
  std::vector<std::string> names_;
};

TEST(TraceJsonTest, EmptyExportIsValidJson) {
  Tracer::Global().Disable();
  Tracer::Global().Clear();
  const std::string json = Tracer::Global().ExportChromeJson();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Validate()) << json;
}

#if MCN_OBS

TEST(TraceRingTest, DisabledTracerRecordsNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable(64);
  tracer.Disable();
  tracer.Clear();
  const uint64_t before = tracer.total_appended();
  EXPECT_FALSE(StartQueryTrace().active());
  const TraceContext forced{123};
  const TraceContextScope scope(forced);
  { TraceSpan span(EventType::kExec, 1); }
  RecordInstant(forced, EventType::kAdmission, 1);
  EXPECT_EQ(tracer.total_appended(), before);
}

TEST(TraceRingTest, WraparoundKeepsMostRecentEvents) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable(/*events_per_ring=*/64);
  const TraceContext context = StartQueryTrace();
  ASSERT_TRUE(context.active());
  const TraceContextScope scope(context);
  for (uint64_t i = 0; i < 500; ++i) {
    RecordInstant(context, EventType::kDominanceRound, i);
  }
  EXPECT_EQ(tracer.total_appended(), 500u);

  const std::string json = tracer.ExportChromeJson();
  tracer.Disable();
  JsonChecker checker(json);
  ASSERT_TRUE(checker.Validate()) << json;
  // This thread's ring holds exactly its capacity, and it is the newest
  // 64 events (rounds 436..499) that survived the wrap.
  EXPECT_EQ(checker.trace_events(), 64);
  EXPECT_NE(json.find("\"round\": 499"), std::string::npos);
  EXPECT_NE(json.find("\"round\": 436"), std::string::npos);
  EXPECT_EQ(json.find("\"round\": 435"), std::string::npos);
  tracer.Clear();
}

TEST(TraceRingTest, SpansCarryTypeNamesAndQueryIds) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable(1024);
  const TraceContext context = StartQueryTrace();
  const TraceContextScope scope(context);
  {
    TraceSpan query(EventType::kQuery, 1);
    TraceSpan turn(EventType::kExpansionTurn, 3);
    turn.set_arg1(1);
    RecordInstant(context, EventType::kProbeFetch, 42,
                  kFetchMiss | kFetchRemote);
  }
  const std::string json = tracer.ExportChromeJson();
  tracer.Disable();
  JsonChecker checker(json);
  ASSERT_TRUE(checker.Validate()) << json;
  EXPECT_EQ(checker.trace_events(), 3);
  EXPECT_TRUE(checker.SawName("query"));
  EXPECT_TRUE(checker.SawName("expansion_turn"));
  EXPECT_TRUE(checker.SawName("probe_fetch"));
  // Flag bits decode into readable args.
  EXPECT_NE(json.find("\"miss\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"remote\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"pooled\": 1"), std::string::npos);
  tracer.Clear();
}

TEST(TraceRingTest, SpanWithoutActiveContextIsFree) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable(64);
  const uint64_t before = tracer.total_appended();
  // No TraceContextScope installed: spans must not record.
  { TraceSpan span(EventType::kExec, 1); }
  EXPECT_EQ(tracer.total_appended(), before);
  tracer.Disable();
  tracer.Clear();
}

TEST(TraceStressTest, ConcurrentWritersAndLiveExport) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable(/*events_per_ring=*/256);
  constexpr int kWriters = 4;
  constexpr int kEventsPerWriter = 20000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&tracer] {
      const TraceContext context{tracer.NewQueryId()};
      const TraceContextScope scope(context);
      for (int i = 0; i < kEventsPerWriter; ++i) {
        if (i % 3 == 0) {
          TraceSpan span(EventType::kExpansionTurn,
                         static_cast<uint64_t>(i));
        } else {
          RecordInstant(context, EventType::kProbeFetch,
                        static_cast<uint64_t>(i), i % 4);
        }
      }
    });
  }
  // Live exports while the writers hammer their rings: every export must
  // be a valid document (a torn read would produce garbage JSON).
  for (int i = 0; i < 10; ++i) {
    const std::string json = tracer.ExportChromeJson();
    JsonChecker checker(json);
    ASSERT_TRUE(checker.Validate()) << "live export " << i << " invalid";
  }
  for (auto& t : writers) t.join();

  EXPECT_GE(tracer.total_appended(),
            static_cast<uint64_t>(kWriters) * kEventsPerWriter);
  const std::string json = tracer.ExportChromeJson();
  tracer.Disable();
  JsonChecker checker(json);
  ASSERT_TRUE(checker.Validate());
  // Each writer thread's ring retains exactly its capacity.
  EXPECT_EQ(checker.trace_events(), kWriters * 256);
  tracer.Clear();
}

TEST(TraceContextTest, ScopesNestAndRestore) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable(64);
  const TraceContext outer = StartQueryTrace();
  const TraceContext inner = StartQueryTrace();
  ASSERT_NE(outer.query_id, inner.query_id);
  EXPECT_FALSE(CurrentTraceContext().active());
  {
    TraceContextScope outer_scope(outer);
    EXPECT_EQ(CurrentTraceContext().query_id, outer.query_id);
    {
      TraceContextScope inner_scope(inner);
      EXPECT_EQ(CurrentTraceContext().query_id, inner.query_id);
    }
    EXPECT_EQ(CurrentTraceContext().query_id, outer.query_id);
  }
  EXPECT_FALSE(CurrentTraceContext().active());
  tracer.Disable();
  tracer.Clear();
}

#else  // !MCN_OBS

TEST(TraceStubTest, StubLayerIsInertButWellFormed) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable(1024);
  EXPECT_FALSE(tracer.enabled());
  EXPECT_FALSE(StartQueryTrace().active());
  const std::string json = tracer.ExportChromeJson();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Validate()) << json;
  EXPECT_EQ(checker.trace_events(), 0);
  EXPECT_EQ(tracer.total_appended(), 0u);
}

#endif  // MCN_OBS

}  // namespace
}  // namespace mcn::obs
