// ThreadSanitizer stress suite for intra-query parallel d-expansion
// (DESIGN.md §7): oversubscribed probe workers, 1-frame-per-slot buffer
// pools, and raw thread gangs hammering one StripedCachedFetch — the
// configurations most likely to expose a missing happens-before edge in
// the stripe / single-flight / turn-barrier machinery. Runs in the CI
// TSan job (ctest label `stress`).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "mcn/algo/result_hash.h"
#include "mcn/algo/skyline_query.h"
#include "mcn/algo/topk_query.h"
#include "mcn/common/random.h"
#include "mcn/exec/expansion_executor.h"
#include "mcn/expand/probe_scheduler.h"
#include "mcn/expand/striped_fetch.h"
#include "test_util.h"

namespace mcn::expand {
namespace {

constexpr int kHammerThreads = 8;

struct StressRig {
  explicit StressRig(const test::SmallConfig& config, size_t frames,
                     int slots)
      : instance(test::MakeSmallInstance(config).value()) {
    instance->disk.BeginConcurrentReads();
    for (int s = 0; s < slots; ++s) {
      pools.push_back(std::make_unique<storage::BufferPool>(&instance->disk,
                                                            frames));
      readers.push_back(std::make_unique<net::NetworkReader>(
          instance->files, pools.back().get()));
      reader_ptrs.push_back(readers.back().get());
    }
  }
  ~StressRig() { instance->disk.EndConcurrentReads(); }

  std::unique_ptr<gen::Instance> instance;
  std::vector<std::unique_ptr<storage::BufferPool>> pools;
  std::vector<std::unique_ptr<net::NetworkReader>> readers;
  std::vector<const net::NetworkReader*> reader_ptrs;
};

// Raw thread gang, every thread fetching a random walk of adjacency +
// facility records through one shared cache over 1-frame pools. Contents
// must match a private serial reader; afterwards every physical fetch
// must correspond to exactly one cached record (fetched at most once).
TEST(ParallelExpansionStressTest, StripedFetchHammer) {
  const uint64_t seed = test::AnnounceSeed("parallel_expansion_stress_test");
  test::SmallConfig config;
  config.num_costs = 4;
  config.seed = test::DeriveSeed(seed, 1);
  StressRig rig(config, /*frames=*/1, /*slots=*/kHammerThreads + 1);

  StripedCachedFetch fetch(rig.reader_ptrs);
  const uint32_t n = fetch.num_nodes();

  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kHammerThreads);
  for (int t = 0; t < kHammerThreads; ++t) {
    threads.emplace_back([&, t] {
      StripedCachedFetch::BindWorkerSlot(t + 1);
      Random rng(test::DeriveSeed(seed, 1000 + t));
      for (int iter = 0; iter < 400; ++iter) {
        graph::NodeId v = static_cast<graph::NodeId>(rng.Uniform(n));
        auto adj = fetch.GetAdjacency(v);
        if (!adj.ok()) {
          errors.fetch_add(1);
          continue;
        }
        for (const net::AdjEntry& e : *adj.value()) {
          if (e.fac.empty()) continue;
          auto facs = fetch.GetFacilities(graph::EdgeKey(v, e.neighbor),
                                          e.fac);
          if (!facs.ok()) errors.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0u);

  // Contents: every cached adjacency row equals a fresh serial read.
  StripedCachedFetch::BindWorkerSlot(0);
  Random rng(test::DeriveSeed(seed, 2));
  std::vector<net::AdjEntry> expected;
  for (int check = 0; check < 200; ++check) {
    graph::NodeId v = static_cast<graph::NodeId>(rng.Uniform(n));
    auto adj = fetch.GetAdjacency(v);
    ASSERT_TRUE(adj.ok());
    ASSERT_TRUE(rig.readers[0]->GetAdjacency(v, &expected).ok());
    ASSERT_EQ(adj.value()->size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      const net::AdjEntry& got = (*adj.value())[i];
      EXPECT_EQ(got.neighbor, expected[i].neighbor);
      EXPECT_EQ(got.fac.count, expected[i].fac.count);
      for (int j = 0; j < config.num_costs; ++j) {
        EXPECT_EQ(got.w[j], expected[i].w[j]);
      }
    }
  }

  // §IV-B accounting under contention: at most one physical fetch per
  // record, despite kHammerThreads racing for the same stripes.
  const FetchProvider::Stats& stats = fetch.stats();
  EXPECT_EQ(stats.adjacency_fetches, fetch.cached_nodes());
  EXPECT_EQ(stats.facility_fetches, fetch.cached_edges());
  EXPECT_LE(stats.adjacency_fetches, stats.adjacency_requests);
}

// All threads demand the same record at once: the single-flight guard must
// collapse the stampede into one physical fetch, and every waiter must see
// the same published row.
TEST(ParallelExpansionStressTest, SingleFlightCollapsesStampede) {
  const uint64_t seed = test::AnnounceSeed("parallel_expansion_stress_test");
  test::SmallConfig config;
  config.seed = test::DeriveSeed(seed, 3);
  StressRig rig(config, /*frames=*/1, /*slots=*/kHammerThreads + 1);

  for (graph::NodeId v : {0u, 17u, 123u}) {
    StripedCachedFetch fetch(rig.reader_ptrs);
    std::atomic<int> ready{0};
    std::vector<const std::vector<net::AdjEntry>*> rows(kHammerThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kHammerThreads; ++t) {
      threads.emplace_back([&, t] {
        StripedCachedFetch::BindWorkerSlot(t + 1);
        ready.fetch_add(1);
        while (ready.load() < kHammerThreads) std::this_thread::yield();
        auto adj = fetch.GetAdjacency(v);
        rows[t] = adj.ok() ? adj.value() : nullptr;
      });
    }
    for (std::thread& t : threads) t.join();
    for (int t = 0; t < kHammerThreads; ++t) {
      ASSERT_NE(rows[t], nullptr);
      EXPECT_EQ(rows[t], rows[0]);  // one published row, stable address
    }
    EXPECT_EQ(fetch.stats().adjacency_fetches, 1u);
    EXPECT_EQ(fetch.stats().adjacency_requests,
              static_cast<uint64_t>(kHammerThreads));
    // Waits are counted once per waiting probe: at most every thread but
    // the fetcher (fewer when late arrivals find the row published).
    EXPECT_LE(fetch.concurrency_stats().single_flight_waits,
              static_cast<uint64_t>(kHammerThreads - 1));
  }
}

// Full queries under an oversubscribed probe pool (8 workers for d = 4
// expansions) with 1-frame-per-slot pools: concurrent turns hammer one
// StripedCachedFetch per query, and every parallelism level must still
// produce the inline schedule's exact result hash.
TEST(ParallelExpansionStressTest, OversubscribedTurnsStayDeterministic) {
  const uint64_t seed = test::AnnounceSeed("parallel_expansion_stress_test");
  test::SmallConfig config;
  config.num_costs = 4;
  config.seed = test::DeriveSeed(seed, 4);
  auto instance = test::MakeSmallInstance(config).value();

  auto inline_exec = exec::ExpansionExecutor::Create(
                         &instance->disk, instance->files,
                         /*parallelism=*/1, /*pool_frames_per_slot=*/1)
                         .value();
  auto wide_exec = exec::ExpansionExecutor::Create(
                       &instance->disk, instance->files,
                       /*parallelism=*/2 * config.num_costs,
                       /*pool_frames_per_slot=*/1)
                       .value();

  Random rng(test::DeriveSeed(seed, 5));
  for (int qi = 0; qi < 6; ++qi) {
    graph::Location q = instance->RandomQueryLocation(rng);
    algo::AggregateFn f = algo::WeightedSum(
        test::TestWeights(config.num_costs, test::DeriveSeed(seed, 50 + qi)));

    auto run = [&](exec::ExpansionExecutor& executor,
                   int parallelism) -> std::pair<uint64_t, uint64_t> {
      executor.ResetIoState();
      auto rig = executor.NewQuery(q).value();
      algo::QueryOptions exec_opts;
      exec_opts.parallelism = parallelism;
      exec_opts.scheduler = rig.scheduler.get();

      algo::SkylineOptions sky;
      sky.exec = exec_opts;
      algo::SkylineQuery sky_query(rig.engine.get(), sky);
      uint64_t sky_hash = algo::HashResult(sky_query.ComputeAll().value());
      // Scheduler accounting: turns ran, and no turn was ever wider than
      // the number of expansions.
      const expand::ParallelProbeScheduler::Stats& ss =
          rig.scheduler->stats();
      EXPECT_GT(ss.turns, 0u);
      EXPECT_GE(ss.probes, ss.turns);
      EXPECT_LE(ss.max_width, static_cast<uint64_t>(config.num_costs));
      if (parallelism > 1) EXPECT_GT(ss.pooled_probes, 0u);

      auto rig2 = executor.NewQuery(q).value();
      exec_opts.scheduler = rig2.scheduler.get();
      algo::TopKOptions topk;
      topk.k = 4;
      topk.exec = exec_opts;
      algo::TopKQuery topk_query(rig2.engine.get(), f, topk);
      uint64_t topk_hash = algo::HashResult(topk_query.Run().value());
      return {sky_hash, topk_hash};
    };

    // Repeat the oversubscribed run: scheduling jitter across repetitions
    // must never leak into the results.
    auto expected = run(*inline_exec, 1);
    for (int rep = 0; rep < 3; ++rep) {
      auto got = run(*wide_exec, 2 * config.num_costs);
      EXPECT_EQ(got.first, expected.first) << "skyline, rep " << rep;
      EXPECT_EQ(got.second, expected.second) << "topk, rep " << rep;
    }
  }
}

}  // namespace
}  // namespace mcn::expand
