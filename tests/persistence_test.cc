#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "mcn/algo/skyline_query.h"
#include "mcn/expand/engines.h"
#include "mcn/net/catalog.h"
#include "mcn/storage/persistence.h"
#include "test_util.h"

namespace mcn {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(PersistenceTest, DiskImageRoundTrip) {
  storage::DiskManager disk;
  storage::FileId a = disk.CreateFile("alpha");
  storage::FileId b = disk.CreateFile("beta");
  std::vector<std::byte> page(storage::kPageSize);
  for (int p = 0; p < 5; ++p) {
    storage::PageNo no = disk.AllocatePage(a).value();
    page[0] = static_cast<std::byte>(p);
    page[storage::kPageSize - 1] = static_cast<std::byte>(p * 3);
    ASSERT_TRUE(disk.WritePage({a, no}, page.data()).ok());
  }
  disk.AllocatePage(b).value();  // one zero page

  std::string path = TempPath("disk_roundtrip.img");
  ASSERT_TRUE(storage::SaveDiskImage(disk, path).ok());
  auto loaded = storage::LoadDiskImage(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->num_files(), 2u);
  EXPECT_EQ(loaded->FileName(a).value(), "alpha");
  EXPECT_EQ(loaded->NumPages(a).value(), 5u);
  EXPECT_EQ(loaded->NumPages(b).value(), 1u);
  for (int p = 0; p < 5; ++p) {
    const std::byte* data = loaded->PageData({a, uint32_t(p)}).value();
    EXPECT_EQ(data[0], static_cast<std::byte>(p));
    EXPECT_EQ(data[storage::kPageSize - 1], static_cast<std::byte>(p * 3));
  }
  EXPECT_EQ(loaded->stats().page_reads, 0u);  // load is not query I/O
}

TEST(PersistenceTest, RejectsCorruptImages) {
  std::string path = TempPath("bad.img");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTDISK0" << "garbage";
  }
  EXPECT_FALSE(storage::LoadDiskImage(path).ok());
  {
    std::ofstream out(path, std::ios::binary);
    out << "MCNDISK1";  // truncated after magic
  }
  EXPECT_FALSE(storage::LoadDiskImage(path).ok());
  EXPECT_FALSE(storage::LoadDiskImage(TempPath("missing.img")).ok());
}

TEST(PersistenceTest, CatalogRoundTrip) {
  test::DiskFixture fx(test::TinyGraph(),
                       test::TinyFacilities(test::TinyGraph()), 16);
  std::string path = TempPath("catalog.cat");
  ASSERT_TRUE(net::SaveCatalog(fx.files, path).ok());
  auto loaded = net::LoadCatalog(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_nodes, fx.files.num_nodes);
  EXPECT_EQ(loaded->num_edges, fx.files.num_edges);
  EXPECT_EQ(loaded->num_facilities, fx.files.num_facilities);
  EXPECT_EQ(loaded->num_costs, fx.files.num_costs);
  EXPECT_EQ(loaded->total_pages, fx.files.total_pages);
  EXPECT_EQ(loaded->adjacency_tree.root(), fx.files.adjacency_tree.root());
  EXPECT_EQ(loaded->facility_tree.height(),
            fx.files.facility_tree.height());
}

TEST(PersistenceTest, CatalogRejectsBadInput) {
  std::string path = TempPath("bad.cat");
  {
    std::ofstream out(path);
    out << "something-else\n";
  }
  EXPECT_FALSE(net::LoadCatalog(path).ok());
  {
    std::ofstream out(path);
    out << "mcn-catalog-v1\nnum_nodes=5\n";  // missing keys
  }
  EXPECT_FALSE(net::LoadCatalog(path).ok());
  {
    std::ofstream out(path);
    out << "mcn-catalog-v1\nbroken line without equals\n";
  }
  EXPECT_FALSE(net::LoadCatalog(path).ok());
}

TEST(PersistenceTest, FullDatabaseRoundTripAnswersQueries) {
  // Build, save, load in a "new process", and verify queries agree.
  test::SmallConfig config;
  config.seed = 5150;
  auto instance = test::MakeSmallInstance(config).value();
  std::string base = TempPath("netdb");
  ASSERT_TRUE(
      net::SaveNetworkDatabase(instance->disk, instance->files, base).ok());

  auto db = net::LoadNetworkDatabase(base);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  storage::BufferPool pool(&db->disk, 64);
  net::NetworkReader reader(db->files, &pool);

  Random rng(2);
  for (int qi = 0; qi < 3; ++qi) {
    graph::Location q = instance->RandomQueryLocation(rng);
    auto oracle =
        test::OracleSkyline(instance->graph, instance->facilities, q);
    auto engine = expand::CeaEngine::Create(&reader, q).value();
    algo::SkylineQuery query(engine.get());
    std::set<graph::FacilityId> got;
    auto entries = query.ComputeAll().value();
    for (const auto& e : entries) got.insert(e.facility);
    EXPECT_EQ(got, oracle);
  }
}

}  // namespace
}  // namespace mcn
