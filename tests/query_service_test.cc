// QueryService end-to-end tests: determinism across worker counts (result
// hashes AND per-query buffer-miss counts), parity with direct
// single-threaded execution, shutdown/drain semantics, oversubscription,
// and the storage layer's concurrent-read contract.
#include "mcn/exec/query_service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "mcn/algo/incremental_topk.h"
#include "mcn/algo/result_hash.h"
#include "mcn/algo/skyline_query.h"
#include "mcn/algo/topk_query.h"
#include "mcn/common/random.h"
#include "mcn/gen/workload.h"
#include "test_util.h"

namespace mcn::exec {
namespace {

struct ServiceFixture {
  std::unique_ptr<gen::Instance> instance;
  size_t frames = 0;

  explicit ServiceFixture(uint64_t seed = 11) {
    test::SmallConfig config;
    config.seed = seed;
    auto built = test::MakeSmallInstance(config);
    EXPECT_TRUE(built.ok());
    instance = std::move(built).value();
    frames = instance->pool->capacity();
  }

  ServiceOptions Options(int workers) const {
    ServiceOptions opts;
    opts.num_workers = workers;
    opts.queue_capacity = 64;
    opts.pool_frames_per_worker = frames;
    return opts;
  }

  /// A deterministic mixed workload (same for every service under test).
  std::vector<QueryRequest> MixedWorkload(int n) const {
    std::vector<QueryRequest> requests;
    Random rng(1234);
    int d = instance->graph.num_costs();
    for (int i = 0; i < n; ++i) {
      QueryRequest req;
      req.location = instance->RandomQueryLocation(rng);
      req.engine = (i % 2 == 0) ? expand::EngineKind::kCea
                                : expand::EngineKind::kLsa;
      switch (i % 3) {
        case 0:
          req.kind = QueryKind::kSkyline;
          break;
        case 1:
          req.kind = QueryKind::kTopK;
          req.k = 3;
          req.weights = test::TestWeights(d, 99 + i);
          break;
        case 2:
          req.kind = QueryKind::kIncrementalTopK;
          req.k = 5;
          req.weights = test::TestWeights(d, 7 + i);
          break;
      }
      requests.push_back(std::move(req));
    }
    return requests;
  }
};

struct RunRecord {
  std::vector<uint64_t> hashes;
  std::vector<uint64_t> misses;
  std::vector<size_t> result_sizes;
};

RunRecord RunThrough(QueryService& service,
                     const std::vector<QueryRequest>& requests) {
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(requests.size());
  for (const QueryRequest& req : requests) {
    futures.push_back(service.Submit(req));
  }
  RunRecord record;
  for (auto& future : futures) {
    QueryResult result = future.get();
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    record.hashes.push_back(result.result_hash);
    record.misses.push_back(result.stats.buffer_misses);
    record.result_sizes.push_back(result.kind == QueryKind::kSkyline
                                      ? result.skyline.size()
                                      : result.topk.size());
  }
  return record;
}

TEST(QueryServiceTest, DeterministicAcrossWorkerCounts) {
  ServiceFixture fx;
  auto requests = fx.MixedWorkload(30);

  auto s1 = QueryService::Create(&fx.instance->disk, fx.instance->files,
                                 fx.Options(1));
  ASSERT_TRUE(s1.ok());
  RunRecord r1 = RunThrough(**s1, requests);
  (*s1)->Shutdown();

  auto s8 = QueryService::Create(&fx.instance->disk, fx.instance->files,
                                 fx.Options(8));
  ASSERT_TRUE(s8.ok());
  RunRecord r8 = RunThrough(**s8, requests);
  (*s8)->Shutdown();

  // Same workload, 1 vs 8 workers: identical result hashes AND identical
  // per-query buffer-miss counts (cold cache per query).
  EXPECT_EQ(r1.hashes, r8.hashes);
  EXPECT_EQ(r1.misses, r8.misses);
  EXPECT_EQ(r1.result_sizes, r8.result_sizes);
}

TEST(QueryServiceTest, MatchesDirectSingleThreadedExecution) {
  ServiceFixture fx;
  auto requests = fx.MixedWorkload(18);

  auto service = QueryService::Create(&fx.instance->disk,
                                      fx.instance->files, fx.Options(4));
  ASSERT_TRUE(service.ok());
  RunRecord concurrent = RunThrough(**service, requests);
  (*service)->Shutdown();

  // Reference: the same requests executed inline on the instance's own
  // pool/reader, exactly like the paper's single-query experiments.
  for (size_t i = 0; i < requests.size(); ++i) {
    const QueryRequest& req = requests[i];
    fx.instance->ResetIoState();
    auto engine = expand::MakeEngine(req.engine, fx.instance->reader.get(),
                                     req.location);
    ASSERT_TRUE(engine.ok());
    uint64_t hash = 0;
    switch (req.kind) {
      case QueryKind::kSkyline: {
        algo::SkylineQuery query(engine.value().get());
        auto rows = query.ComputeAll();
        ASSERT_TRUE(rows.ok());
        hash = algo::HashResult(rows.value());
        break;
      }
      case QueryKind::kTopK: {
        algo::TopKOptions opts;
        opts.k = req.k;
        algo::TopKQuery query(engine.value().get(),
                              algo::WeightedSum(req.weights), opts);
        auto rows = query.Run();
        ASSERT_TRUE(rows.ok());
        hash = algo::HashResult(rows.value());
        break;
      }
      case QueryKind::kIncrementalTopK: {
        algo::IncrementalTopK query(engine.value().get(),
                                    algo::WeightedSum(req.weights));
        std::vector<algo::TopKEntry> rows;
        for (int j = 0; j < req.k; ++j) {
          auto next = query.NextBest();
          ASSERT_TRUE(next.ok());
          if (!next.value().has_value()) break;
          rows.push_back(*next.value());
        }
        hash = algo::HashResult(rows);
        break;
      }
    }
    EXPECT_EQ(concurrent.hashes[i], hash) << "request " << i;
    EXPECT_EQ(concurrent.misses[i], fx.instance->pool->stats().misses)
        << "request " << i;
  }
}

TEST(QueryServiceTest, OversubscriptionManyMoreQueriesThanWorkers) {
  ServiceFixture fx;
  // Queue capacity 8 with 2 workers and 60 queries: Submit applies
  // back-pressure; everything still completes exactly once.
  ServiceOptions opts = fx.Options(2);
  opts.queue_capacity = 8;
  auto service =
      QueryService::Create(&fx.instance->disk, fx.instance->files, opts);
  ASSERT_TRUE(service.ok());
  auto requests = fx.MixedWorkload(60);
  RunRecord record = RunThrough(**service, requests);
  EXPECT_EQ(record.hashes.size(), 60u);
  ServiceStats stats = (*service)->Snapshot();
  EXPECT_EQ(stats.completed, 60u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(stats.qps, 0.0);
  EXPECT_GT(stats.latency_p50_ms, 0.0);
  EXPECT_LE(stats.latency_p50_ms, stats.latency_p95_ms);
  EXPECT_LE(stats.latency_p95_ms, stats.latency_p99_ms);
  (*service)->Shutdown();
}

TEST(QueryServiceTest, DrainCompletesBacklogAndShutdownRejects) {
  ServiceFixture fx;
  auto service = QueryService::Create(&fx.instance->disk,
                                      fx.instance->files, fx.Options(2));
  ASSERT_TRUE(service.ok());
  auto requests = fx.MixedWorkload(20);
  std::vector<std::future<QueryResult>> futures;
  for (const auto& req : requests) futures.push_back((*service)->Submit(req));
  (*service)->Drain();
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_TRUE(future.get().status.ok());
  }
  (*service)->Shutdown(/*drain=*/true);
  // Submitting after shutdown resolves immediately with an error.
  auto rejected = (*service)->Submit(requests[0]);
  QueryResult result = rejected.get();
  EXPECT_FALSE(result.status.ok());
  // Shutdown is idempotent.
  (*service)->Shutdown();
}

TEST(QueryServiceTest, NonDrainingShutdownResolvesBacklogWithErrors) {
  ServiceFixture fx;
  ServiceOptions opts = fx.Options(1);
  opts.queue_capacity = 64;
  auto service =
      QueryService::Create(&fx.instance->disk, fx.instance->files, opts);
  ASSERT_TRUE(service.ok());
  auto requests = fx.MixedWorkload(40);
  std::vector<std::future<QueryResult>> futures;
  for (const auto& req : requests) futures.push_back((*service)->Submit(req));
  (*service)->Shutdown(/*drain=*/false);
  int completed = 0, dropped = 0;
  for (auto& future : futures) {
    QueryResult result = future.get();  // must never hang or throw
    (result.status.ok() ? completed : dropped) += 1;
  }
  EXPECT_EQ(completed + dropped, 40);
}

TEST(QueryServiceTest, InvalidRequestsFailCleanlyWithoutPoisoningWorkers) {
  ServiceFixture fx;
  auto service = QueryService::Create(&fx.instance->disk,
                                      fx.instance->files, fx.Options(2));
  ASSERT_TRUE(service.ok());
  Random rng(5);

  QueryRequest bad_weights;
  bad_weights.kind = QueryKind::kTopK;
  bad_weights.location = fx.instance->RandomQueryLocation(rng);
  bad_weights.weights = {1.0};  // wrong dimension
  QueryResult bad = (*service)->Submit(bad_weights).get();
  EXPECT_FALSE(bad.status.ok());

  QueryRequest bad_k;
  bad_k.kind = QueryKind::kIncrementalTopK;
  bad_k.location = fx.instance->RandomQueryLocation(rng);
  bad_k.weights = test::TestWeights(fx.instance->graph.num_costs(), 3);
  bad_k.k = 0;
  EXPECT_FALSE((*service)->Submit(bad_k).get().status.ok());

  // The worker that executed the failures still serves good queries.
  auto good = fx.MixedWorkload(6);
  RunRecord record = RunThrough(**service, good);
  EXPECT_EQ(record.hashes.size(), 6u);
  ServiceStats stats = (*service)->Snapshot();
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.completed, 6u);
}

TEST(QueryServiceTest, DiskIsFrozenWhileServiceLives) {
  ServiceFixture fx;
  auto service = QueryService::Create(&fx.instance->disk,
                                      fx.instance->files, fx.Options(1));
  ASSERT_TRUE(service.ok());
  EXPECT_EQ(fx.instance->disk.concurrent_reader_scopes(), 1);
  (*service)->Shutdown();
  EXPECT_EQ(fx.instance->disk.concurrent_reader_scopes(), 0);
}

TEST(QueryServiceTest, IntraQueryParallelismKeepsHashesIdentical) {
  // QueryRequest::parallelism routes a query onto the worker's turn-barrier
  // rig (DESIGN.md §7). The turn schedule must be byte-identical whether it
  // runs inline (parallelism 1) or on probe workers (parallelism 4), for
  // every query kind; the classic serial path (parallelism 0) must agree
  // on the result sets, checked here via skyline sizes and top-k hashes.
  ServiceFixture fx;
  std::vector<QueryRequest> base = fx.MixedWorkload(12);
  for (QueryRequest& req : base) req.engine = expand::EngineKind::kCea;

  auto run_with_parallelism = [&](int parallelism) {
    ServiceOptions opts = fx.Options(2);
    opts.per_query_parallelism = 4;
    auto service = QueryService::Create(&fx.instance->disk,
                                        fx.instance->files, opts);
    EXPECT_TRUE(service.ok());
    std::vector<QueryRequest> requests = base;
    for (QueryRequest& req : requests) req.parallelism = parallelism;
    RunRecord record = RunThrough(**service, requests);
    (*service)->Shutdown();
    return record;
  };

  RunRecord inline_turns = run_with_parallelism(1);
  RunRecord pooled_turns = run_with_parallelism(4);
  EXPECT_EQ(inline_turns.hashes, pooled_turns.hashes);
  EXPECT_EQ(inline_turns.result_sizes, pooled_turns.result_sizes);

  RunRecord serial = run_with_parallelism(0);
  EXPECT_EQ(serial.result_sizes, inline_turns.result_sizes);
  for (size_t i = 0; i < base.size(); ++i) {
    if (base[i].kind != QueryKind::kSkyline) {
      // Complete cost vectors: top-k / incremental results are identical
      // across the serial and turn schedules, entry for entry.
      EXPECT_EQ(serial.hashes[i], inline_turns.hashes[i]) << "request " << i;
    }
  }
}

TEST(QueryServiceTest, WarmCacheModeReducesMisses) {
  ServiceFixture fx;
  ServiceOptions opts = fx.Options(1);
  opts.cold_cache_per_query = false;
  opts.pool_frames_per_worker = 4096;  // large enough to keep every page
  auto service =
      QueryService::Create(&fx.instance->disk, fx.instance->files, opts);
  ASSERT_TRUE(service.ok());
  // The same query twice on one worker: the second run hits the warm pool.
  Random rng(21);
  QueryRequest req;
  req.kind = QueryKind::kSkyline;
  req.location = fx.instance->RandomQueryLocation(rng);
  QueryResult first = (*service)->Submit(req).get();
  QueryResult second = (*service)->Submit(req).get();
  ASSERT_TRUE(first.status.ok());
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(first.result_hash, second.result_hash);
  EXPECT_LT(second.stats.buffer_misses, first.stats.buffer_misses);
}

}  // namespace
}  // namespace mcn::exec
