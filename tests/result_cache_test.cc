// Tests for the cross-query ResultCache (DESIGN.md §13): hit / miss /
// coalesce outcomes, the LRU entry bound, epoch-bump invalidation (stale
// flights resolve but are not stored), canonical key normalization, and
// the single-flight guarantee under concurrent identical requests (the
// TSan stress angle).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "mcn/exec/query_service.h"
#include "mcn/exec/result_cache.h"

namespace mcn::exec {
namespace {

using Outcome = ResultCache::Lookup::Outcome;

QueryResult OkResult(uint64_t hash) {
  QueryResult result;
  result.result_hash = hash;
  algo::SkylineEntry entry;
  entry.facility = static_cast<graph::FacilityId>(hash);
  result.skyline.push_back(entry);
  result.stats.buffer_misses = 123;  // must NOT survive into served copies
  result.stats.exec_seconds = 1.5;
  return result;
}

TEST(ResultCacheTest, MissThenCompleteThenHit) {
  ResultCache cache(/*max_entries=*/8);
  ResultCache::Lookup miss = cache.Acquire("k1", 0);
  ASSERT_EQ(miss.outcome, Outcome::kMiss);
  ASSERT_NE(miss.flight, nullptr);

  EXPECT_EQ(cache.Complete(miss.flight, "k1", 0, OkResult(77)), 0u);

  ResultCache::Lookup hit = cache.Acquire("k1", 0);
  ASSERT_EQ(hit.outcome, Outcome::kHit);
  EXPECT_EQ(hit.cached.result_hash, 77u);
  ASSERT_EQ(hit.cached.skyline.size(), 1u);
  // Served copies carry rows + hash but a fresh QueryStats: a cached
  // answer did no I/O and ran on no worker.
  EXPECT_EQ(hit.cached.stats.buffer_misses, 0u);
  EXPECT_EQ(hit.cached.stats.exec_seconds, 0.0);

  ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.inflight, 0u);
}

TEST(ResultCacheTest, CoalescedWaiterSharesTheFlightsResult) {
  ResultCache cache(8);
  ResultCache::Lookup owner = cache.Acquire("k", 0);
  ASSERT_EQ(owner.outcome, Outcome::kMiss);

  ResultCache::Lookup waiter = cache.Acquire("k", 0);
  ASSERT_EQ(waiter.outcome, Outcome::kCoalesced);
  ASSERT_TRUE(waiter.future.valid());

  EXPECT_EQ(cache.Complete(owner.flight, "k", 0, OkResult(5)), 1u);
  QueryResult shared = waiter.future.get();
  EXPECT_TRUE(shared.status.ok());
  EXPECT_EQ(shared.result_hash, 5u);
  EXPECT_EQ(shared.stats.buffer_misses, 0u);  // sanitized for waiters too
  EXPECT_EQ(cache.stats().coalesced, 1u);
}

TEST(ResultCacheTest, FailuresAreSharedButNeverStored) {
  ResultCache cache(8);
  ResultCache::Lookup owner = cache.Acquire("k", 0);
  ResultCache::Lookup waiter = cache.Acquire("k", 0);

  QueryResult failed;
  failed.status = Status::IOError("disk on fire");
  failed.result_hash = algo::kFnvOffsetBasis;
  cache.Complete(owner.flight, "k", 0, failed);

  EXPECT_FALSE(waiter.future.get().status.ok());
  EXPECT_EQ(cache.stats().entries, 0u);
  // The key is free again: the next request re-runs the query.
  EXPECT_EQ(cache.Acquire("k", 0).outcome, Outcome::kMiss);
}

TEST(ResultCacheTest, LruBoundEvictsTheColdestEntry) {
  ResultCache cache(/*max_entries=*/2);
  for (const char* key : {"a", "b"}) {
    ResultCache::Lookup miss = cache.Acquire(key, 0);
    ASSERT_EQ(miss.outcome, Outcome::kMiss);
    cache.Complete(miss.flight, key, 0, OkResult(1));
  }
  // Touch "a" so "b" is the LRU victim.
  ASSERT_EQ(cache.Acquire("a", 0).outcome, Outcome::kHit);

  ResultCache::Lookup miss = cache.Acquire("c", 0);
  ASSERT_EQ(miss.outcome, Outcome::kMiss);
  cache.Complete(miss.flight, "c", 0, OkResult(3));

  ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(cache.Acquire("a", 0).outcome, Outcome::kHit);
  EXPECT_EQ(cache.Acquire("c", 0).outcome, Outcome::kHit);
  EXPECT_EQ(cache.Acquire("b", 0).outcome, Outcome::kMiss);
}

TEST(ResultCacheTest, ZeroCapacityCacheStoresNothing) {
  ResultCache cache(0);
  ResultCache::Lookup miss = cache.Acquire("k", 0);
  ASSERT_EQ(miss.outcome, Outcome::kMiss);
  cache.Complete(miss.flight, "k", 0, OkResult(9));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.Acquire("k", 0).outcome, Outcome::kMiss);
}

TEST(ResultCacheTest, EpochBumpDropsEntriesAndRefusesStaleStores) {
  ResultCache cache(8);
  ResultCache::Lookup miss = cache.Acquire("k", 0);
  cache.Complete(miss.flight, "k", 0, OkResult(1));
  ASSERT_EQ(cache.stats().entries, 1u);

  // A flight still running when the network epoch moves on...
  ResultCache::Lookup stale = cache.Acquire("k2", 0);
  ResultCache::Lookup stale_waiter = cache.Acquire("k2", 0);
  cache.InvalidateAll(1);
  EXPECT_EQ(cache.stats().entries, 0u);  // stored entries dropped

  // ...must still resolve its waiters, but its result is not stored.
  EXPECT_EQ(cache.Complete(stale.flight, "k2", 0, OkResult(2)), 1u);
  EXPECT_EQ(stale_waiter.future.get().result_hash, 2u);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.Acquire("k2", 1).outcome, Outcome::kMiss);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(ResultCacheTest, CanonicalKeyNormalizesExecutionHints) {
  api::QuerySpec a;
  a.kind = QueryKind::kSkyline;
  a.location = graph::Location::AtNode(3);
  api::QuerySpec b = a;
  // Execution hints never change results (api/query_spec.h), so they must
  // not fragment the cache...
  b.engine = expand::EngineKind::kLsa;
  b.parallelism = 7;
  b.deadline_ms = 1000;
  EXPECT_EQ(QueryService::CanonicalCacheKey(a, 4),
            QueryService::CanonicalCacheKey(b, 4));
  // ...while the epoch and anything result-relevant must.
  EXPECT_NE(QueryService::CanonicalCacheKey(a, 4),
            QueryService::CanonicalCacheKey(a, 5));
  api::QuerySpec c = a;
  c.location = graph::Location::AtNode(4);
  EXPECT_NE(QueryService::CanonicalCacheKey(a, 4),
            QueryService::CanonicalCacheKey(c, 4));
  api::QuerySpec d = a;
  d.kind = QueryKind::kTopK;
  d.k = 5;
  EXPECT_NE(QueryService::CanonicalCacheKey(a, 4),
            QueryService::CanonicalCacheKey(d, 4));
}

// The single-flight guarantee under racing identical requests: exactly
// one thread owns the computation, everyone observes the same result.
TEST(ResultCacheTest, SingleFlightUnderConcurrentAcquires) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  ResultCache cache(64);
  for (int round = 0; round < kRounds; ++round) {
    const std::string key = "k" + std::to_string(round);
    std::atomic<int> owners{0};
    std::atomic<int> hits{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        ResultCache::Lookup lookup = cache.Acquire(key, 0);
        switch (lookup.outcome) {
          case Outcome::kMiss:
            owners.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::microseconds(50 * t));
            cache.Complete(lookup.flight, key, 0,
                           OkResult(static_cast<uint64_t>(round)));
            break;
          case Outcome::kCoalesced: {
            QueryResult result = lookup.future.get();
            EXPECT_EQ(result.result_hash, static_cast<uint64_t>(round));
            break;
          }
          case Outcome::kHit:
            EXPECT_EQ(lookup.cached.result_hash,
                      static_cast<uint64_t>(round));
            hits.fetch_add(1);
            break;
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(owners.load(), 1) << "round " << round;
  }
  ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, kRounds);
  EXPECT_EQ(stats.hits + stats.coalesced,
            static_cast<uint64_t>(kRounds * (kThreads - 1)));
  EXPECT_EQ(stats.inflight, 0u);
}

// Mixed-key churn with a tiny bound: exercises eviction, invalidation and
// completion racing each other — the TSan meat.
TEST(ResultCacheTest, ConcurrentChurnStress) {
  ResultCache cache(4);
  std::atomic<uint64_t> epoch{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 300; ++i) {
        const uint64_t e = epoch.load();
        const std::string key = "k" + std::to_string(i % 7) + "@" +
                                std::to_string(e);
        ResultCache::Lookup lookup = cache.Acquire(key, e);
        if (lookup.outcome == Outcome::kMiss) {
          cache.Complete(lookup.flight, key, e,
                         OkResult(static_cast<uint64_t>(i % 7)));
        } else if (lookup.outcome == Outcome::kCoalesced) {
          lookup.future.get();
        }
        if (t == 0 && i % 100 == 99) {
          cache.InvalidateAll(epoch.fetch_add(1) + 1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(cache.stats().entries, 4u);
  EXPECT_EQ(cache.stats().inflight, 0u);
}

}  // namespace
}  // namespace mcn::exec
