// Failure-model coverage for the service stack (DESIGN.md §10): deadline
// propagation (expiry in queue and mid-expansion, both in-process and over
// the wire), cooperative cancellation through the engine layer, admission
// control (bounded in-flight load shedding with immediate typed
// rejection), client reconnect/retry with backoff, sessions-never-retried
// semantics, and the server's connection reaper + session-leak assertion.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "mcn/api/client.h"
#include "mcn/api/server.h"
#include "mcn/common/cancel.h"
#include "mcn/exec/query_service.h"
#include "mcn/expand/engines.h"
#include "mcn/gen/workload.h"
#include "test_util.h"

namespace mcn::exec {
namespace {

using api::Client;
using api::IncrementalSpec;
using api::QuerySpec;
using api::Server;
using api::SkylineSpec;
using api::TopKSpec;

gen::ExperimentConfig SmallConfig(uint64_t seed) {
  gen::ExperimentConfig config;
  config.nodes = 400;
  config.edges = 520;
  config.facilities = 60;
  config.clusters = 4;
  config.num_costs = 3;
  config.buffer_pct = 1.0;
  config.seed = seed;
  return config;
}

struct Rig {
  std::unique_ptr<gen::ShardedInstance> instance;
  std::unique_ptr<QueryService> service;

  static Rig Make(const ServiceOptions& options, uint64_t seed = 11) {
    Rig rig;
    auto built = gen::BuildShardedInstance(SmallConfig(seed), 1);
    EXPECT_TRUE(built.ok());
    rig.instance = std::move(built).value();
    ServiceOptions opts = options;
    opts.pool_frames_per_worker = rig.instance->pool_frames;
    auto service = QueryService::Create(&rig.instance->storage,
                                        rig.instance->files, opts);
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    rig.service = std::move(service).value();
    return rig;
  }

  QuerySpec Skyline(Random& rng) const {
    return SkylineSpec(instance->RandomQueryLocation(rng));
  }
};

TEST(CancelTokenTest, ChecksCancellationAndDeadlineAsTypedStatuses) {
  CancelToken plain;
  EXPECT_TRUE(plain.Check().ok());
  plain.Cancel();
  EXPECT_EQ(plain.Check().code(), StatusCode::kCancelled);

  CancelToken no_deadline(0);
  EXPECT_FALSE(no_deadline.has_deadline());
  EXPECT_TRUE(no_deadline.Check().ok());

  CancelToken expired(0);
  expired.ArmDeadline(CancelToken::Clock::now() -
                      std::chrono::milliseconds(1));
  EXPECT_TRUE(expired.expired());
  EXPECT_EQ(expired.Check().code(), StatusCode::kDeadlineExceeded);

  CancelToken future_token(60'000);
  EXPECT_TRUE(future_token.has_deadline());
  EXPECT_TRUE(future_token.Check().ok());
  // Cancellation wins over a live deadline.
  future_token.Cancel();
  EXPECT_EQ(future_token.Check().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, CancelledEngineUnwindsWithTypedStatus) {
  // The expansion layer observes the token at its settle steps: a
  // cancelled token must surface as kCancelled from NextNN, not as a
  // wrong answer or a crash.
  auto instance = test::MakeSmallInstance({});
  ASSERT_TRUE(instance.ok());
  Random rng(5);
  const graph::Location q = (*instance)->RandomQueryLocation(rng);
  for (const auto kind : {expand::EngineKind::kLsa, expand::EngineKind::kCea}) {
    auto engine = expand::MakeEngine(kind, (*instance)->reader.get(), q);
    ASSERT_TRUE(engine.ok());
    CancelToken token;
    token.Cancel();
    (*engine)->SetCancelToken(&token);
    auto next = (*engine)->NextNN(0);
    ASSERT_FALSE(next.ok());
    EXPECT_EQ(next.status().code(), StatusCode::kCancelled);
    // Clearing the token lets the same engine resume normally.
    (*engine)->SetCancelToken(nullptr);
    EXPECT_TRUE((*engine)->NextNN(0).ok());
  }
}

TEST(ServiceRobustnessTest, DeadlinedQueriesBehindSlowTrafficTimeOut) {
  ServiceOptions opts;
  opts.num_workers = 1;
  opts.queue_capacity = 64;
  // Every buffer miss sleeps: the filler query provably occupies the one
  // worker for longer than the 1ms deadlines queued behind it.
  opts.io_latency_ms = 1.0;
  opts.simulate_io_stalls = true;
  Rig rig = Rig::Make(opts);
  Random rng(3);

  std::vector<std::future<QueryResult>> futures;
  futures.push_back(rig.service->Submit(rig.Skyline(rng)));  // slow filler
  constexpr int kDeadlined = 16;
  for (int i = 0; i < kDeadlined; ++i) {
    QuerySpec spec = rig.Skyline(rng);
    spec.deadline_ms = 1;
    futures.push_back(rig.service->Submit(std::move(spec)));
  }

  QueryResult filler = futures[0].get();
  EXPECT_TRUE(filler.status.ok()) << filler.status.ToString();
  int timed_out = 0;
  for (size_t i = 1; i < futures.size(); ++i) {
    QueryResult result = futures[i].get();
    if (result.status.ok()) continue;
    // The only acceptable failure is the typed deadline status.
    EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded)
        << result.status.ToString();
    ++timed_out;
  }
  EXPECT_GT(timed_out, 0) << "no deadline fired behind a slow filler";
  ServiceStats stats = rig.service->Snapshot();
  EXPECT_EQ(stats.timed_out, static_cast<uint64_t>(timed_out));
  EXPECT_EQ(stats.failed, static_cast<uint64_t>(timed_out));
  EXPECT_EQ(stats.rejected, 0u);
  rig.service->Shutdown();
}

TEST(ServiceRobustnessTest, CoalescedCacheWaiterHonorsItsOwnDeadline) {
  // A coalesced waiter rides another flight's future and never enters the
  // queue where deadlines are normally enforced (deadline_ms is also
  // normalized out of the cache key) — its own deadline must still fire
  // instead of inheriting the owning flight's unbounded wait.
  ServiceOptions opts;
  opts.num_workers = 1;
  opts.queue_capacity = 64;
  opts.io_latency_ms = 1.0;
  opts.simulate_io_stalls = true;
  opts.result_cache_entries = 8;
  Rig rig = Rig::Make(opts);
  Random rng(7);

  // The filler occupies the single worker (every miss sleeps), so the
  // owner is still queued — its flight provably in-flight — when the
  // deadlined waiter submits the identical spec.
  QuerySpec spec = rig.Skyline(rng);
  std::future<QueryResult> filler = rig.service->Submit(rig.Skyline(rng));
  std::future<QueryResult> owner = rig.service->Submit(spec);
  QuerySpec deadlined = spec;
  deadlined.deadline_ms = 1;
  std::future<QueryResult> waiter = rig.service->Submit(std::move(deadlined));

  QueryResult waited = waiter.get();
  ASSERT_FALSE(waited.status.ok());
  EXPECT_EQ(waited.status.code(), StatusCode::kDeadlineExceeded)
      << waited.status.ToString();

  // The flight itself (and the filler) still complete normally.
  EXPECT_TRUE(filler.get().status.ok());
  EXPECT_TRUE(owner.get().status.ok());
  ServiceStats stats = rig.service->Snapshot();
  EXPECT_EQ(stats.cache_coalesced, 1u);
  rig.service->Shutdown();
}

TEST(ServiceRobustnessTest, AdmissionControlShedsOverCapImmediately) {
  ServiceOptions opts;
  opts.num_workers = 1;
  opts.queue_capacity = 64;
  opts.max_inflight = 2;
  opts.io_latency_ms = 1.0;
  opts.simulate_io_stalls = true;  // keep the worker busy while we flood
  Rig rig = Rig::Make(opts);
  Random rng(7);

  constexpr int kFlood = 32;
  std::vector<std::future<QueryResult>> futures;
  std::vector<double> reject_latency_ms;
  for (int i = 0; i < kFlood; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    futures.push_back(rig.service->Submit(rig.Skyline(rng)));
    reject_latency_ms.push_back(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
  int rejected = 0;
  for (auto& future : futures) {
    QueryResult result = future.get();
    if (result.status.ok()) continue;
    EXPECT_EQ(result.status.code(), StatusCode::kResourceExhausted)
        << result.status.ToString();
    ++rejected;
  }
  ASSERT_GT(rejected, 0) << "flooding a 2-deep service shed nothing";
  // Load shedding must be immediate — a rejected Submit never blocks on
  // the queue (here: every Submit, accepted or shed, returned in well
  // under the time one stalled query takes).
  for (double ms : reject_latency_ms) EXPECT_LT(ms, 250.0);

  ServiceStats stats = rig.service->Snapshot();
  EXPECT_EQ(stats.rejected, static_cast<uint64_t>(rejected));
  // Shed queries never entered a queue: not double-counted as failures.
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kFlood - rejected));
  rig.service->Shutdown();
}

TEST(ServiceRobustnessTest, MaxInflightZeroKeepsLegacyBlockingBackpressure) {
  ServiceOptions opts;
  opts.num_workers = 2;
  opts.queue_capacity = 4;  // tiny: the blocking path must absorb the flood
  opts.max_inflight = 0;
  Rig rig = Rig::Make(opts);
  Random rng(9);
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(rig.service->Submit(rig.Skyline(rng)));
  }
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().status.ok());
  }
  EXPECT_EQ(rig.service->Snapshot().rejected, 0u);
  rig.service->Shutdown();
}

TEST(ServiceRobustnessTest, DeadlineRidesTheWireAndCountsAsTimedOut) {
  ServiceOptions opts;
  opts.num_workers = 1;
  opts.queue_capacity = 64;
  opts.io_latency_ms = 1.0;
  opts.simulate_io_stalls = true;
  Rig rig = Rig::Make(opts);
  auto server = Server::Start(rig.service.get(), {});
  ASSERT_TRUE(server.ok());
  Random rng(13);

  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  // Park a slow filler on the single worker from a second connection so
  // the deadlined query expires while queued.
  auto filler_client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(filler_client.ok());
  QuerySpec filler = rig.Skyline(rng);
  std::thread filler_thread([&] { (void)(*filler_client)->Execute(filler); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  QuerySpec spec = rig.Skyline(rng);
  spec.deadline_ms = 1;
  auto response = (*client)->Execute(spec);
  filler_thread.join();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status.code(), StatusCode::kDeadlineExceeded)
      << response.value().status.ToString();
  EXPECT_GE(rig.service->Snapshot().timed_out, 1u);
  (*server)->Stop();
  rig.service->Shutdown();
}

TEST(ServiceRobustnessTest, ClientRetriesAcrossServerRestart) {
  ServiceOptions opts;
  opts.num_workers = 2;
  Rig rig = Rig::Make(opts);
  Random rng(17);

  auto first = Server::Start(rig.service.get(), {});
  ASSERT_TRUE(first.ok());
  const int port = (*first)->port();

  Client::Options client_options;
  client_options.retry.max_attempts = 5;
  client_options.retry.base_backoff_ms = 1;
  client_options.retry.max_backoff_ms = 8;
  auto client = Client::Connect("127.0.0.1", port, client_options);
  ASSERT_TRUE(client.ok());

  QuerySpec spec = rig.Skyline(rng);
  auto before = (*client)->Execute(spec);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(before.value().status.ok());

  // Bounce the server; the old connection is dead but the endpoint comes
  // back on the same port before the retries are exhausted.
  (*first)->Stop();
  first->reset();
  Server::Options server_options;
  server_options.port = port;
  auto second = Server::Start(rig.service.get(), server_options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  auto after = (*client)->Execute(spec);
  ASSERT_TRUE(after.ok())
      << "retry across restart failed: " << after.status().ToString();
  ASSERT_TRUE(after.value().status.ok());
  // Same query, same service: the reconnect is invisible in the result.
  EXPECT_EQ(after.value().result_hash, before.value().result_hash);
  EXPECT_GE((*client)->retries(), 1u);
  (*second)->Stop();
  rig.service->Shutdown();
}

TEST(ServiceRobustnessTest, SessionCallsAreNotRetried) {
  ServiceOptions opts;
  opts.num_workers = 2;
  Rig rig = Rig::Make(opts);
  Random rng(19);
  const int d = rig.instance->graph.num_costs();

  auto server = Server::Start(rig.service.get(), {});
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  auto session = (*client)->OpenSession(IncrementalSpec(
      rig.instance->RandomQueryLocation(rng), 2, test::TestWeights(d, 2)));
  ASSERT_TRUE(session.ok());

  (*server)->Stop();
  const uint64_t retries_before = (*client)->retries();
  auto next = (*client)->Next(*session, 2);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kIOError)
      << next.status().ToString();
  // No reconnect attempt was burned on a non-idempotent call…
  EXPECT_EQ((*client)->retries(), retries_before);
  // …and the connection is marked broken rather than half-trusted.
  EXPECT_FALSE((*client)->connected());
  rig.service->Shutdown();
}

TEST(ServiceRobustnessTest, ReaperJoinsFinishedConnectionsWithoutNewAccepts) {
  ServiceOptions opts;
  opts.num_workers = 1;
  Rig rig = Rig::Make(opts);
  Random rng(23);
  const int d = rig.instance->graph.num_costs();

  auto server = Server::Start(rig.service.get(), {});
  ASSERT_TRUE(server.ok());
  {
    auto client = Client::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(client.ok());
    auto session = (*client)->OpenSession(IncrementalSpec(
        rig.instance->RandomQueryLocation(rng), 2, test::TestWeights(d, 4)));
    ASSERT_TRUE(session.ok());
    EXPECT_EQ((*server)->sessions_open(), 1);
  }  // disconnect with the session still open

  // No further accepts happen; only the reaper thread can collect the
  // finished connection (pre-reaper, this joined on the next accept).
  for (int spin = 0; spin < 400 && (*server)->connections_reaped() == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ((*server)->connections_reaped(), 1u);
  EXPECT_EQ((*server)->sessions_open(), 0);
  EXPECT_EQ(rig.service->num_open_sessions(), 0u);
  // Stop()'s zero-leaked-sessions assertion must hold.
  (*server)->Stop();
  rig.service->Shutdown();
}

TEST(ServiceRobustnessTest, IdleConnectionSurvivesServerRecvTimeout) {
  ServiceOptions opts;
  opts.num_workers = 1;
  Rig rig = Rig::Make(opts);
  Random rng(29);

  Server::Options server_options;
  server_options.io_timeout_ms = 30;
  auto server = Server::Start(rig.service.get(), server_options);
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  // Idle for several recv-timeout windows: the server must treat boundary
  // timeouts as idleness, not drop the connection.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  auto response = (*client)->Execute(rig.Skyline(rng));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response.value().status.ok());
  EXPECT_EQ((*server)->connections_accepted(), 1u);
  (*server)->Stop();
  rig.service->Shutdown();
}

}  // namespace
}  // namespace mcn::exec
