// Stress regression for the session idle-eviction seams (DESIGN.md §9).
// The hazard: idle eviction runs lazily on every OpenSession, and a
// session is evictable the instant its inflight count hits zero. Three
// protections keep an actively streamed session alive under a tiny idle
// timeout, and this test hammers all of them from concurrent threads:
//
//  * SessionNext refreshes last_used (and takes the inflight ticket)
//    under sessions_mu_ *before* the batch is enqueued, so a session is
//    never evictable between submit and execution;
//  * a running batch holds inflight > 0, which every eviction pass
//    (EvictExpiredSessions / MakeSessionRoom) skips;
//  * batch completion refreshes last_used and returns the inflight ticket
//    only once the completion is client-visible — *after* the modeled I/O
//    stall sleep, immediately before the promise resolves. This is the
//    regression this test caught: the ticket used to be returned before
//    the stall, so a stall longer than the idle timeout left the session
//    evictable (with an aging timestamp) while the client was still
//    blocked on that very batch, and the lazy timeout sweep reclaimed it.
//
// With an idle timeout far below the (stall-simulated) batch duration and
// churn threads triggering eviction passes continuously, every batch on
// the streamed sessions must resolve OK — a single NotFound means an
// active session was reclaimed. Runs under the `stress` label and must be
// TSan-clean.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "mcn/exec/query_service.h"
#include "mcn/gen/workload.h"
#include "test_util.h"

namespace mcn::exec {
namespace {

TEST(SessionEvictionStressTest, ActiveSessionsSurviveTinyIdleTimeout) {
  const uint64_t base = test::AnnounceSeed("session_eviction_stress_test");
  test::SmallConfig config;
  config.seed = base;
  auto instance = test::MakeSmallInstance(config).value();

  ServiceOptions options;
  options.num_workers = 4;
  options.pool_frames_per_worker = instance->pool->capacity();
  // The regression dials: an idle timeout below one batch's modeled I/O
  // time. Each miss sleeps 2ms for real, so a cold batch over the tiny
  // pool takes well over the 50ms timeout — any eviction pass that
  // ignores the inflight pin or reads a stale last_used mid-batch
  // reclaims the session. (The timeout is not made arbitrarily small: a
  // *legitimately* idle session may be evicted by design, so the window
  // between back-to-back batches must stay far below the timeout.)
  options.session_idle_seconds = 0.05;
  options.io_latency_ms = 2.0;
  options.simulate_io_stalls = true;
  // Roomy table: capacity-pressure eviction (MakeSessionRoom) reclaims
  // the LRU *idle* session regardless of the timeout — documented LRU
  // semantics, not the race under test — so keep the table from filling
  // and let the idle timeout be the only reclaim path.
  options.max_sessions = 64;
  auto service =
      QueryService::Create(&instance->disk, instance->files, options).value();

  std::atomic<bool> stop{false};
  std::atomic<int> not_found{0};
  std::atomic<int> batches_ok{0};

  // Streamers: each pins one session and pulls batches back to back. The
  // first batches are slow (cold pools + engine build under simulated
  // stalls), exactly the window where last_used goes stale mid-batch.
  auto stream = [&](uint64_t seed) {
    Random rng(seed);
    api::QuerySpec spec;
    spec.kind = api::QueryKind::kIncrementalTopK;
    spec.location = instance->RandomQueryLocation(rng);
    spec.preference.weights = test::TestWeights(config.num_costs, seed);
    spec.k = 2;
    auto id = service->OpenSession(spec);
    ASSERT_TRUE(id.ok());
    for (int b = 0; b < 25; ++b) {
      QueryResult result = service->SessionNext(id.value(), 2).get();
      if (result.status.code() == StatusCode::kNotFound) {
        ++not_found;
        return;
      }
      ASSERT_TRUE(result.status.ok()) << result.status.ToString();
      ++batches_ok;
      // Past exhaustion batches resolve OK and empty — the fast-path
      // completion (near-zero exec time) races the timeout too.
    }
    EXPECT_TRUE(service->CloseSession(id.value()).ok());
  };

  // Churners: every OpenSession runs an eviction pass under sessions_mu_;
  // open/close continuously so passes interleave with every stage of the
  // streamers' batches (and table pressure exercises MakeSessionRoom).
  auto churn = [&](uint64_t seed) {
    Random rng(seed);
    while (!stop.load(std::memory_order_acquire)) {
      api::QuerySpec spec;
      spec.kind = api::QueryKind::kIncrementalTopK;
      spec.location = instance->RandomQueryLocation(rng);
      spec.preference.weights = test::TestWeights(config.num_costs, seed);
      auto id = service->OpenSession(spec);
      if (id.ok() && rng.Next() % 2 == 0) {
        // Half are abandoned idle — fodder for the idle-timeout sweep.
        service->CloseSession(id.value());
      }
      // Throttled so abandoned sessions expire (50ms) faster than they
      // accumulate — the table never fills and MakeSessionRoom stays out
      // of the picture (see the max_sessions comment above).
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(stream, test::DeriveSeed(base, 1));
  threads.emplace_back(stream, test::DeriveSeed(base, 2));
  threads.emplace_back(churn, test::DeriveSeed(base, 3));
  threads.emplace_back(churn, test::DeriveSeed(base, 4));
  threads[0].join();
  threads[1].join();
  stop.store(true, std::memory_order_release);
  threads[2].join();
  threads[3].join();

  // The invariant under test: an actively streamed session is never
  // reclaimed, no matter how often eviction runs or how slow a batch is.
  EXPECT_EQ(not_found.load(), 0);
  EXPECT_EQ(batches_ok.load(), 50);
  service->Shutdown();
}

}  // namespace
}  // namespace mcn::exec
