// Property tests for the sharded-partition layer (DESIGN.md §8):
//
//  * GridTilePartitioner produces valid, reasonably balanced partitions
//    and every edge's endpoints resolve to the recorded shards (the
//    canonical-u ownership rule);
//  * the K = 1 sharded build is page-for-page identical to the flat
//    net::BuildNetwork across the four query files — the degeneration
//    anchor of the determinism contract;
//  * boundary records and the routing table round-trip through
//    storage/persistence.cc (SaveDiskImage + LoadDiskImage), so a sharded
//    database image is self-describing across processes;
//  * the routing ShardedNetworkReader returns byte-identical records to
//    the flat reader for every node/edge/facility, with the local/remote
//    accounting consistent with the routing table.
//
// All randomness derives from MCN_TEST_SEED (logged on entry).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "mcn/gen/workload.h"
#include "mcn/graph/multi_cost_graph.h"
#include "mcn/net/network_builder.h"
#include "mcn/net/network_reader.h"
#include "mcn/shard/partition.h"
#include "mcn/shard/sharded_builder.h"
#include "mcn/shard/sharded_reader.h"
#include "mcn/shard/sharded_storage.h"
#include "mcn/storage/buffer_pool.h"
#include "mcn/storage/persistence.h"
#include "test_util.h"

namespace mcn::shard {
namespace {

std::unique_ptr<gen::Instance> SmallInstance(uint64_t seed, int d = 3) {
  test::SmallConfig config;
  config.num_costs = d;
  config.seed = seed;
  return test::MakeSmallInstance(config).value();
}

TEST(GridTilePartitionerTest, ValidAndBalanced) {
  const uint64_t base = test::AnnounceSeed("shard_partition_test");
  for (int k : {1, 2, 4, 7}) {
    auto instance = SmallInstance(test::DeriveSeed(base, k));
    GridTilePartitioner partitioner;
    auto part = partitioner.Build(instance->graph, k).value();
    ASSERT_EQ(part.num_shards, k);
    ASSERT_EQ(part.num_nodes(), instance->graph.num_nodes());
    ASSERT_TRUE(part.Validate().ok());
    // Balance: every shard within a generous factor of the even split.
    const uint32_t even = instance->graph.num_nodes() / k;
    for (uint32_t size : part.ShardSizes()) {
      EXPECT_GE(size, 1u);
      if (k > 1) EXPECT_LE(size, 3 * even + 1) << "k=" << k;
    }
  }
}

TEST(GridTilePartitionerTest, Deterministic) {
  const uint64_t base = test::AnnounceSeed("shard_partition_test");
  auto instance = SmallInstance(test::DeriveSeed(base, 42));
  GridTilePartitioner partitioner;
  auto a = partitioner.Build(instance->graph, 4).value();
  auto b = partitioner.Build(instance->graph, 4).value();
  EXPECT_EQ(a.node_shard, b.node_shard);
}

TEST(GridTilePartitionerTest, RejectsDegenerateInputs) {
  graph::MultiCostGraph g(2);
  g.AddNode(0, 0);
  g.AddNode(1, 1);
  g.Finalize();
  GridTilePartitioner partitioner;
  EXPECT_FALSE(partitioner.Build(g, 0).ok());
  EXPECT_FALSE(partitioner.Build(g, 3).ok());  // more shards than nodes
  EXPECT_TRUE(partitioner.Build(g, 2).ok());
}

// Every edge's endpoints resolve to the shards the partition records, and
// edge/facility ownership follows the canonical-u rule the builder wrote
// into the routing table.
TEST(ShardedBuildTest, EdgeEndpointsResolveToRecordedShards) {
  const uint64_t base = test::AnnounceSeed("shard_partition_test");
  auto instance = SmallInstance(test::DeriveSeed(base, 7));
  const auto& g = instance->graph;
  GridTilePartitioner partitioner;
  auto part = partitioner.Build(g, 4).value();

  ShardedStorage sstore(part);
  auto files =
      BuildShardedNetwork(&sstore, g, instance->facilities).value();

  uint32_t boundary = 0;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::EdgeRecord& er = g.edge(e);
    const graph::EdgeKey key(er.u, er.v);
    ASSERT_LT(part.of_node(er.u), static_cast<ShardId>(part.num_shards));
    ASSERT_LT(part.of_node(er.v), static_cast<ShardId>(part.num_shards));
    EXPECT_EQ(part.of_edge(key), part.of_node(er.u));
    if (part.is_boundary(key)) ++boundary;
  }
  EXPECT_EQ(files.num_boundary_edges, boundary);
  EXPECT_GT(boundary, 0u) << "4-way split of a connected graph must cut";

  // Facility ownership: the shard of the facility's edge.
  for (graph::FacilityId f = 0; f < instance->facilities.size(); ++f) {
    const graph::EdgeRecord& er =
        g.edge(instance->facilities[f].edge);
    EXPECT_EQ(files.facility_shard[f],
              part.of_edge(graph::EdgeKey(er.u, er.v)));
  }

  // Per-shard owned counts sum to the global totals.
  uint32_t edges = 0, facilities = 0;
  for (const auto& nf : files.shards) {
    edges += nf.num_edges;
    facilities += nf.num_facilities;
  }
  EXPECT_EQ(edges, g.num_edges());
  EXPECT_EQ(facilities, instance->facilities.size());
}

// K = 1 degenerates to the flat layout: the four query files carry
// identical page images (same file ids, same page counts, same bytes).
TEST(ShardedBuildTest, SingleShardMatchesFlatBuildByteForByte) {
  const uint64_t base = test::AnnounceSeed("shard_partition_test");
  auto instance = SmallInstance(test::DeriveSeed(base, 13));

  ShardedStorage sstore(SingleShardPartition(instance->graph.num_nodes()));
  auto sharded =
      BuildShardedNetwork(&sstore, instance->graph, instance->facilities)
          .value();
  ASSERT_EQ(sharded.num_shards(), 1);
  const net::NetworkFiles& flat = instance->files;
  const net::NetworkFiles& s0 = sharded.shards[0];
  EXPECT_EQ(s0.adjacency_file, flat.adjacency_file);
  EXPECT_EQ(s0.facility_file, flat.facility_file);
  EXPECT_EQ(s0.total_pages, flat.total_pages);
  EXPECT_EQ(sharded.total_pages, flat.total_pages);

  for (storage::FileId f : {flat.facility_file, flat.adjacency_file,
                            flat.adjacency_tree.file(),
                            flat.facility_tree.file()}) {
    const uint32_t flat_pages = instance->disk.NumPages(f).value();
    ASSERT_EQ(sstore.disk(0)->NumPages(f).value(), flat_pages)
        << "file " << f;
    for (storage::PageNo p = 0; p < flat_pages; ++p) {
      const std::byte* a = instance->disk.PageData({f, p}).value();
      const std::byte* b = sstore.disk(0)->PageData({f, p}).value();
      ASSERT_EQ(std::memcmp(a, b, storage::kPageSize), 0)
          << "file " << f << " page " << p;
    }
  }
}

// Boundary records round-trip: builder -> decode, and builder -> disk
// image (persistence.cc) -> reload -> decode.
TEST(ShardedBuildTest, BoundaryRecordsRoundTripThroughPersistence) {
  const uint64_t base = test::AnnounceSeed("shard_partition_test");
  auto instance = SmallInstance(test::DeriveSeed(base, 21));
  const auto& g = instance->graph;
  GridTilePartitioner partitioner;
  auto part = partitioner.Build(g, 4).value();
  ShardedStorage sstore(part);
  auto files =
      BuildShardedNetwork(&sstore, g, instance->facilities).value();

  // Expected boundary set per owner shard, straight from the graph.
  std::vector<std::vector<BoundaryEdge>> expected(part.num_shards);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::EdgeRecord& er = g.edge(e);
    const graph::EdgeKey key(er.u, er.v);
    if (!part.is_boundary(key)) continue;
    BoundaryEdge be;
    be.edge = key;
    be.owner_shard = part.of_edge(key);
    be.peer_shard = part.of_node(key.v);
    be.w = er.w;
    expected[be.owner_shard].push_back(be);
  }

  uint32_t total = 0;
  for (ShardId s = 0; s < static_cast<ShardId>(part.num_shards); ++s) {
    auto decoded =
        ReadBoundaryRecords(*sstore.disk(s), files.boundary_files[s])
            .value();
    ASSERT_EQ(decoded.size(), expected[s].size()) << "shard " << s;
    for (size_t i = 0; i < decoded.size(); ++i) {
      EXPECT_EQ(decoded[i], expected[s][i]) << "shard " << s << " rec " << i;
    }
    total += static_cast<uint32_t>(decoded.size());

    // Through persistence: the shard's disk image reloads to the same
    // boundary records.
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("mcn_shard_img_" + std::to_string(s) + ".img"))
            .string();
    ASSERT_TRUE(storage::SaveDiskImage(*sstore.disk(s), path).ok());
    auto loaded = storage::LoadDiskImage(path).value();
    std::filesystem::remove(path);
    auto reloaded =
        ReadBoundaryRecords(loaded, files.boundary_files[s]).value();
    ASSERT_EQ(reloaded.size(), decoded.size());
    for (size_t i = 0; i < decoded.size(); ++i) {
      EXPECT_EQ(reloaded[i], decoded[i]);
    }
  }
  EXPECT_EQ(total, files.num_boundary_edges);
}

TEST(ShardedBuildTest, RoutingTableRoundTripsThroughPersistence) {
  const uint64_t base = test::AnnounceSeed("shard_partition_test");
  auto instance = SmallInstance(test::DeriveSeed(base, 33));
  GridTilePartitioner partitioner;
  auto part = partitioner.Build(instance->graph, 4).value();
  ShardedStorage sstore(part);
  auto files =
      BuildShardedNetwork(&sstore, instance->graph, instance->facilities)
          .value();

  const std::string path =
      (std::filesystem::temp_directory_path() / "mcn_shard0_routing.img")
          .string();
  ASSERT_TRUE(storage::SaveDiskImage(*sstore.disk(0), path).ok());
  auto loaded = storage::LoadDiskImage(path).value();
  std::filesystem::remove(path);

  auto table = ReadRoutingTable(loaded, files.routing_file).value();
  EXPECT_EQ(table.partition.num_shards, part.num_shards);
  EXPECT_EQ(table.partition.node_shard, part.node_shard);
  EXPECT_EQ(table.facility_shard, files.facility_shard);
}

// The routing reader serves byte-identical records to the flat reader and
// accounts local/remote against the routing table.
TEST(ShardedReaderTest, MatchesFlatReaderAndCountsRemote) {
  const uint64_t base = test::AnnounceSeed("shard_partition_test");
  auto instance = SmallInstance(test::DeriveSeed(base, 55));
  const auto& g = instance->graph;
  GridTilePartitioner partitioner;
  auto part = partitioner.Build(g, 4).value();
  ShardedStorage sstore(part);
  auto files =
      BuildShardedNetwork(&sstore, g, instance->facilities).value();
  ShardedNetworkReader reader(&sstore, files, /*frames_per_shard=*/8);

  EXPECT_EQ(reader.num_nodes(), g.num_nodes());
  EXPECT_EQ(reader.num_costs(), g.num_costs());
  EXPECT_EQ(reader.num_facilities(), instance->facilities.size());

  reader.set_home_shard(0);
  uint64_t expect_local = 0, expect_remote = 0;
  std::vector<net::AdjEntry> flat_adj, sharded_adj;
  std::vector<net::FacilityOnEdge> flat_fac, sharded_fac;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_TRUE(reader.GetAdjacency(v, &sharded_adj).ok());
    ASSERT_TRUE(instance->reader->GetAdjacency(v, &flat_adj).ok());
    part.of_node(v) == 0 ? ++expect_local : ++expect_remote;
    ASSERT_EQ(sharded_adj.size(), flat_adj.size()) << "node " << v;
    for (size_t i = 0; i < flat_adj.size(); ++i) {
      EXPECT_EQ(sharded_adj[i].neighbor, flat_adj[i].neighbor);
      EXPECT_EQ(sharded_adj[i].fac.count, flat_adj[i].fac.count);
      for (int c = 0; c < g.num_costs(); ++c) {
        EXPECT_EQ(sharded_adj[i].w[c], flat_adj[i].w[c]);
      }
      // Facility record contents are identical even though the sharded
      // FacRef points into a different (shard-local) file position.
      if (flat_adj[i].fac.empty()) continue;
      graph::EdgeKey key(v, flat_adj[i].neighbor);
      ASSERT_TRUE(
          reader.GetFacilities(key, sharded_adj[i].fac, &sharded_fac).ok());
      ASSERT_TRUE(instance->reader
                      ->GetFacilities(key, flat_adj[i].fac, &flat_fac)
                      .ok());
      part.of_edge(key) == 0 ? ++expect_local : ++expect_remote;
      ASSERT_EQ(sharded_fac.size(), flat_fac.size());
      for (size_t j = 0; j < flat_fac.size(); ++j) {
        EXPECT_EQ(sharded_fac[j].facility, flat_fac[j].facility);
        EXPECT_EQ(sharded_fac[j].frac, flat_fac[j].frac);
      }
    }
  }
  for (graph::FacilityId f = 0; f < instance->facilities.size(); ++f) {
    auto sharded_edge = reader.LocateFacilityEdge(f).value();
    auto flat_edge = instance->reader->LocateFacilityEdge(f).value();
    EXPECT_EQ(sharded_edge, flat_edge);
    files.facility_shard[f] == 0 ? ++expect_local : ++expect_remote;
  }

  const auto io = reader.shard_io_stats();
  EXPECT_EQ(io.local_fetches, expect_local);
  EXPECT_EQ(io.remote_fetches, expect_remote);
  EXPECT_GT(io.remote_fetches, 0u);

  // Per-shard page reads merge into one figure-parity total with a
  // by-name file breakdown.
  const auto merged = sstore.MergedStats();
  EXPECT_GT(merged.page_reads, 0u);
  uint64_t by_file = 0;
  for (const auto& fr : merged.per_file_reads) by_file += fr.reads;
  EXPECT_EQ(by_file, merged.page_reads);
  EXPECT_GT(merged.ReadsForFile("adjacency_file"), 0u);
}

}  // namespace
}  // namespace mcn::shard
