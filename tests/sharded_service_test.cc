// exec::QueryService in sharded mode (DESIGN.md §8): shard-affine worker
// groups over a shard::ShardedStorage, affinity-routed Submit, per-shard
// service statistics, and the determinism contract — result hashes are
// byte-identical to the flat service for every K in {1, 2, 4}, every
// worker count, and every intra-query parallelism level. Runs under TSan
// in CI (label: stress).
#include <gtest/gtest.h>

#include <future>
#include <optional>
#include <string>
#include <vector>

#include "mcn/exec/affinity.h"
#include "mcn/exec/query_service.h"
#include "mcn/gen/workload.h"
#include "test_util.h"

namespace mcn::exec {
namespace {

gen::ExperimentConfig SmallServiceConfig(uint64_t seed) {
  gen::ExperimentConfig config;
  config.nodes = 400;
  config.edges = 520;
  config.facilities = 60;
  config.clusters = 4;
  config.num_costs = 3;
  config.buffer_pct = 1.0;
  config.seed = seed;
  return config;
}

std::vector<QueryRequest> MixedWorkload(const gen::ShardedInstance& instance,
                                        uint64_t seed, int count) {
  Random rng(seed);
  const int d = instance.graph.num_costs();
  std::vector<QueryRequest> requests;
  requests.reserve(count);
  for (int i = 0; i < count; ++i) {
    QueryRequest request;
    request.location = instance.RandomQueryLocation(rng);
    switch (i % 3) {
      case 0:
        request.kind = QueryKind::kSkyline;
        break;
      case 1:
        request.kind = QueryKind::kTopK;
        request.k = 4;
        break;
      case 2:
        request.kind = QueryKind::kIncrementalTopK;
        request.k = 3;
        break;
    }
    request.parallelism = i % 4 == 3 ? 2 : 0;  // mix in pooled turns
    if (request.kind != QueryKind::kSkyline) {
      request.weights = test::TestWeights(d, seed + i);
    }
    requests.push_back(request);
  }
  return requests;
}

struct RunOutcome {
  std::vector<uint64_t> hashes;
  std::vector<uint64_t> misses;
  std::vector<int> shards;  ///< executing group's home shard per query
  ServiceStats stats;
};

RunOutcome RunThrough(QueryService& service,
                      const std::vector<QueryRequest>& requests) {
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(requests.size());
  for (const QueryRequest& request : requests) {
    futures.push_back(service.Submit(QueryRequest(request)));
  }
  RunOutcome outcome;
  for (auto& future : futures) {
    QueryResult result = future.get();
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    outcome.hashes.push_back(result.result_hash);
    outcome.misses.push_back(result.stats.buffer_misses);
    outcome.shards.push_back(result.stats.shard);
  }
  outcome.stats = service.Snapshot();
  return outcome;
}

class ShardedServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    seed_ = test::AnnounceSeed("sharded_service_test");
  }
  uint64_t seed_ = 0;
};

// Result hashes are invariant in K, worker count, and pinning; per-query
// miss counts are invariant in worker count at fixed K.
TEST_F(ShardedServiceTest, DeterministicAcrossShardAndWorkerCounts) {
  const gen::ExperimentConfig config = SmallServiceConfig(seed_);
  auto flat = gen::BuildInstance(config).value();

  // Flat single-worker reference.
  std::vector<QueryRequest> requests;
  std::vector<uint64_t> reference_hashes;
  {
    auto k1 = gen::BuildShardedInstance(config, 1).value();
    requests = MixedWorkload(*k1, test::DeriveSeed(seed_, 1), 24);
    ServiceOptions opts;
    opts.num_workers = 1;
    opts.pool_frames_per_worker = flat->pool->capacity();
    opts.per_query_parallelism = 2;
    auto service =
        QueryService::Create(&flat->disk, flat->files, opts).value();
    reference_hashes = RunThrough(*service, requests).hashes;
    service->Shutdown();
  }

  for (int k : {1, 2, 4}) {
    auto instance = gen::BuildShardedInstance(config, k).value();
    if (k == 1) ASSERT_EQ(instance->pool_frames, flat->pool->capacity());
    std::optional<std::vector<uint64_t>> miss_baseline;
    for (int workers : {1, 4}) {
      for (bool pin : {false, true}) {
        ServiceOptions opts;
        opts.num_workers = workers;
        opts.pool_frames_per_worker = instance->pool_frames;
        opts.per_query_parallelism = 2;
        opts.pin_workers = pin;
        auto service = QueryService::Create(&instance->storage,
                                            instance->files, opts)
                           .value();
        ASSERT_TRUE(service->sharded());
        EXPECT_EQ(service->num_groups(), std::min(k, workers));
        RunOutcome outcome = RunThrough(*service, requests);
        service->Shutdown();

        for (size_t i = 0; i < requests.size(); ++i) {
          EXPECT_EQ(outcome.hashes[i], reference_hashes[i])
              << "K=" << k << " workers=" << workers << " query " << i;
        }
        // Same-K miss counts must not depend on worker count or pinning
        // (each worker's pool set has identical capacity).
        if (!miss_baseline.has_value()) {
          miss_baseline = outcome.misses;
        } else {
          EXPECT_EQ(*miss_baseline, outcome.misses)
              << "K=" << k << " workers=" << workers << " pin=" << pin;
        }
      }
    }
  }
}

TEST_F(ShardedServiceTest, AffinityRoutingAndPerShardStats) {
  const gen::ExperimentConfig config = SmallServiceConfig(seed_);
  const int k = 4;
  auto instance = gen::BuildShardedInstance(config, k).value();
  const auto requests =
      MixedWorkload(*instance, test::DeriveSeed(seed_, 2), 32);

  ServiceOptions opts;
  opts.num_workers = 4;  // one worker per shard group
  opts.pool_frames_per_worker = instance->pool_frames;
  opts.per_query_parallelism = 2;
  auto service =
      QueryService::Create(&instance->storage, instance->files, opts)
          .value();
  ASSERT_EQ(service->num_groups(), k);
  RunOutcome outcome = RunThrough(*service, requests);
  service->Shutdown();

  // Every query executed on the group owning its location.
  const shard::Partition& part = instance->storage.partition();
  for (size_t i = 0; i < requests.size(); ++i) {
    const graph::Location& loc = requests[i].location;
    const shard::ShardId owner = loc.is_node() ? part.of_node(loc.node())
                                               : part.of_edge(loc.edge());
    EXPECT_EQ(outcome.shards[i], static_cast<int>(owner)) << "query " << i;
  }

  // Per-shard rows: one worker each, completions sum to the total, and
  // expansions escaping their tile show up as remote fetches.
  ASSERT_EQ(outcome.stats.per_shard.size(), static_cast<size_t>(k));
  uint64_t completed = 0, local = 0, remote = 0;
  for (const auto& row : outcome.stats.per_shard) {
    EXPECT_EQ(row.workers, 1);
    completed += row.completed;
    local += row.local_fetches;
    remote += row.remote_fetches;
    EXPECT_GE(row.RemoteRatio(), 0.0);
    EXPECT_LE(row.RemoteRatio(), 1.0);
  }
  EXPECT_EQ(completed, outcome.stats.completed);
  EXPECT_EQ(completed, requests.size());
  EXPECT_GT(local, 0u);
  EXPECT_GT(remote, 0u) << "d-expansions over 4 tiles must cross a cut";
}

TEST_F(ShardedServiceTest, SingleShardHasNoRemoteFetches) {
  const gen::ExperimentConfig config = SmallServiceConfig(seed_);
  auto instance = gen::BuildShardedInstance(config, 1).value();
  ServiceOptions opts;
  opts.num_workers = 2;
  opts.pool_frames_per_worker = instance->pool_frames;
  auto service =
      QueryService::Create(&instance->storage, instance->files, opts)
          .value();
  RunOutcome outcome = RunThrough(
      *service, MixedWorkload(*instance, test::DeriveSeed(seed_, 3), 12));
  service->Shutdown();
  ASSERT_EQ(outcome.stats.per_shard.size(), 1u);
  EXPECT_EQ(outcome.stats.per_shard[0].remote_fetches, 0u);
  EXPECT_GT(outcome.stats.per_shard[0].local_fetches, 0u);
}

TEST_F(ShardedServiceTest, DrainAndShutdownAcrossGroups) {
  const gen::ExperimentConfig config = SmallServiceConfig(seed_);
  auto instance = gen::BuildShardedInstance(config, 2).value();
  ServiceOptions opts;
  opts.num_workers = 4;
  opts.pool_frames_per_worker = instance->pool_frames;
  auto service =
      QueryService::Create(&instance->storage, instance->files, opts)
          .value();
  const auto requests =
      MixedWorkload(*instance, test::DeriveSeed(seed_, 4), 16);
  std::vector<std::future<QueryResult>> futures;
  for (const QueryRequest& request : requests) {
    futures.push_back(service->Submit(QueryRequest(request)));
  }
  service->Drain();
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().status.ok());
  }
  service->Shutdown();
  // Submitting after shutdown resolves immediately with an error.
  auto rejected = service->Submit(QueryRequest(requests[0]));
  EXPECT_FALSE(rejected.get().status.ok());
}

}  // namespace
}  // namespace mcn::exec
