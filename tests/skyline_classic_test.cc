#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "mcn/common/random.h"
#include "mcn/gen/cost_generator.h"
#include "mcn/skyline/skyline.h"

namespace mcn::skyline {
namespace {

std::vector<Tuple> RandomTuples(Random& rng, int n, int d,
                                gen::CostDistribution dist) {
  std::vector<Tuple> tuples;
  tuples.reserve(n);
  for (int i = 0; i < n; ++i) {
    tuples.push_back(
        Tuple{static_cast<uint32_t>(i),
              gen::GenerateEdgeCosts(rng, dist, d, 1.0)});
  }
  return tuples;
}

std::set<uint32_t> AsSet(const std::vector<uint32_t>& v) {
  return {v.begin(), v.end()};
}

TEST(ClassicSkylineTest, EmptyAndSingle) {
  EXPECT_TRUE(BlockNestedLoopSkyline({}).empty());
  EXPECT_TRUE(SortFilterSkyline({}).empty());
  std::vector<Tuple> one{{7, graph::CostVector{1, 2}}};
  EXPECT_EQ(BlockNestedLoopSkyline(one), std::vector<uint32_t>{7});
  EXPECT_EQ(SortFilterSkyline(one), std::vector<uint32_t>{7});
}

TEST(ClassicSkylineTest, HandExample) {
  std::vector<Tuple> data{
      {0, graph::CostVector{1, 5}}, {1, graph::CostVector{2, 2}},
      {2, graph::CostVector{5, 1}}, {3, graph::CostVector{3, 3}},
      {4, graph::CostVector{2, 6}},  // dominated by 0? (1,5)<(2,6) yes
  };
  std::set<uint32_t> expected{0, 1, 2};
  EXPECT_EQ(AsSet(BlockNestedLoopSkyline(data)), expected);
  EXPECT_EQ(AsSet(SortFilterSkyline(data)), expected);
  EXPECT_EQ(AsSet(BruteForceSkyline(data)), expected);
}

TEST(ClassicSkylineTest, DuplicateVectorsAllKept) {
  std::vector<Tuple> data{
      {0, graph::CostVector{1, 1}},
      {1, graph::CostVector{1, 1}},
      {2, graph::CostVector{2, 2}},
  };
  std::set<uint32_t> expected{0, 1};
  EXPECT_EQ(AsSet(BlockNestedLoopSkyline(data)), expected);
  EXPECT_EQ(AsSet(SortFilterSkyline(data)), expected);
}

struct ClassicParam {
  int n;
  int d;
  gen::CostDistribution dist;
  uint64_t seed;
};

class ClassicSkylineSweep : public ::testing::TestWithParam<ClassicParam> {};

TEST_P(ClassicSkylineSweep, AllAlgorithmsAgreeWithBruteForce) {
  const ClassicParam& p = GetParam();
  Random rng(p.seed);
  auto data = RandomTuples(rng, p.n, p.d, p.dist);
  auto brute = AsSet(BruteForceSkyline(data));
  EXPECT_EQ(AsSet(BlockNestedLoopSkyline(data)), brute);
  EXPECT_EQ(AsSet(SortFilterSkyline(data)), brute);
}

TEST_P(ClassicSkylineSweep, SfsOutputRespectsMonotoneOrder) {
  const ClassicParam& p = GetParam();
  Random rng(p.seed + 1);
  auto data = RandomTuples(rng, p.n, p.d, p.dist);
  auto result = SortFilterSkyline(data);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(data[result[i - 1]].values.Sum(),
              data[result[i]].values.Sum());
  }
}

TEST_P(ClassicSkylineSweep, SkylineIsMutuallyIncomparable) {
  const ClassicParam& p = GetParam();
  Random rng(p.seed + 2);
  auto data = RandomTuples(rng, p.n, p.d, p.dist);
  auto ids = BlockNestedLoopSkyline(data);
  for (uint32_t a : ids) {
    for (uint32_t b : ids) {
      if (a != b) {
        EXPECT_FALSE(data[a].values.Dominates(data[b].values));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClassicSkylineSweep,
    ::testing::Values(
        ClassicParam{50, 2, gen::CostDistribution::kIndependent, 1},
        ClassicParam{200, 2, gen::CostDistribution::kAntiCorrelated, 2},
        ClassicParam{200, 3, gen::CostDistribution::kCorrelated, 3},
        ClassicParam{500, 3, gen::CostDistribution::kIndependent, 4},
        ClassicParam{500, 4, gen::CostDistribution::kAntiCorrelated, 5},
        ClassicParam{300, 5, gen::CostDistribution::kIndependent, 6},
        ClassicParam{100, 6, gen::CostDistribution::kAntiCorrelated, 7}));

TEST(ClassicSkylineTest, AntiCorrelatedHasLargerSkylineThanCorrelated) {
  Random rng(42);
  auto anti =
      RandomTuples(rng, 2000, 3, gen::CostDistribution::kAntiCorrelated);
  auto corr =
      RandomTuples(rng, 2000, 3, gen::CostDistribution::kCorrelated);
  EXPECT_GT(SortFilterSkyline(anti).size(),
            SortFilterSkyline(corr).size());
}

}  // namespace
}  // namespace mcn::skyline
