// Unit tests for the socket framing layer (DESIGN.md §9, §10) against real
// kernel sockets via socketpair(2): the clean-EOF / mid-frame-EOF
// distinction (a torn frame must never surface as NotFound), oversized
// length prefixes, SO_RCVTIMEO / SO_SNDTIMEO timeout classification at and
// inside frame boundaries, EINTR resumption under a real (non-SA_RESTART)
// signal, and short reads/writes across a kernel buffer much smaller than
// the frame.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <string>
#include <thread>

#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mcn/api/socket_io.h"
#include "mcn/api/wire.h"
#include "mcn/common/status.h"

namespace mcn::api {
namespace {

/// A connected AF_UNIX stream pair, closed on scope exit. a = "peer under
/// test" (usually the reader), b = "remote" the test manipulates.
struct SocketPair {
  int a = -1;
  int b = -1;

  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    CloseA();
    CloseB();
  }
  void CloseA() {
    if (a >= 0) ::close(a);
    a = -1;
  }
  void CloseB() {
    if (b >= 0) ::close(b);
    b = -1;
  }
};

/// A raw frame: 4-byte LE length prefix + payload.
std::string Frame(const std::string& payload) {
  const uint32_t n = static_cast<uint32_t>(payload.size());
  std::string frame;
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>((n >> (8 * i)) & 0xff));
  }
  frame += payload;
  return frame;
}

/// Writes raw bytes without SendFrame's framing (for torn/partial frames).
void RawWrite(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t w = ::write(fd, bytes.data() + off, bytes.size() - off);
    ASSERT_GT(w, 0);
    off += static_cast<size_t>(w);
  }
}

TEST(SocketIoTest, RoundTripsFramesIncludingEmptyPayload) {
  SocketPair sp;
  ASSERT_TRUE(SendFrame(sp.b, Frame("hello wire")).ok());
  ASSERT_TRUE(SendFrame(sp.b, Frame("")).ok());
  auto first = RecvFramePayload(sp.a);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value(), "hello wire");
  auto second = RecvFramePayload(sp.a);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), "");
}

TEST(SocketIoTest, CleanEofAtBoundaryIsNotFound) {
  SocketPair sp;
  sp.CloseB();
  auto payload = RecvFramePayload(sp.a);
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.status().code(), StatusCode::kNotFound);
}

TEST(SocketIoTest, EofInsideLengthPrefixIsCorruptionNotNotFound) {
  SocketPair sp;
  RawWrite(sp.b, std::string("\x0a\x00", 2));  // 2 of 4 prefix bytes
  sp.CloseB();
  auto payload = RecvFramePayload(sp.a);
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.status().code(), StatusCode::kCorruption);
}

TEST(SocketIoTest, EofInsidePayloadIsCorruptionNotNotFound) {
  SocketPair sp;
  const std::string frame = Frame("0123456789");
  RawWrite(sp.b, frame.substr(0, frame.size() - 4));  // 6 of 10 payload bytes
  sp.CloseB();
  auto payload = RecvFramePayload(sp.a);
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.status().code(), StatusCode::kCorruption);
}

TEST(SocketIoTest, OversizedLengthPrefixIsCorruption) {
  SocketPair sp;
  const uint32_t huge = kMaxFramePayload + 1;
  std::string prefix;
  for (int i = 0; i < 4; ++i) {
    prefix.push_back(static_cast<char>((huge >> (8 * i)) & 0xff));
  }
  RawWrite(sp.b, prefix);
  auto payload = RecvFramePayload(sp.a);
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.status().code(), StatusCode::kCorruption);
  // No allocation of `huge` bytes happened; the test not OOMing is the
  // observable. The connection is garbage from here on by contract.
}

TEST(SocketIoTest, RecvTimeoutAtBoundaryIsDeadlineExceeded) {
  SocketPair sp;
  ASSERT_TRUE(SetRecvTimeout(sp.a, 30).ok());
  const auto t0 = std::chrono::steady_clock::now();
  auto payload = RecvFramePayload(sp.a);
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.status().code(), StatusCode::kDeadlineExceeded);
  // And it actually waited (not an instant EAGAIN misclassification).
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(20));
}

TEST(SocketIoTest, RecvTimeoutMidPrefixIsIOError) {
  SocketPair sp;
  ASSERT_TRUE(SetRecvTimeout(sp.a, 30).ok());
  RawWrite(sp.b, std::string("\x0a", 1));  // 1 of 4 prefix bytes, then stall
  auto payload = RecvFramePayload(sp.a);
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.status().code(), StatusCode::kIOError);
}

TEST(SocketIoTest, RecvTimeoutMidPayloadIsIOError) {
  SocketPair sp;
  ASSERT_TRUE(SetRecvTimeout(sp.a, 30).ok());
  const std::string frame = Frame("0123456789");
  RawWrite(sp.b, frame.substr(0, 7));  // full prefix + 3 payload bytes
  auto payload = RecvFramePayload(sp.a);
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.status().code(), StatusCode::kIOError);
}

TEST(SocketIoTest, ClearingRecvTimeoutBlocksAgain) {
  SocketPair sp;
  ASSERT_TRUE(SetRecvTimeout(sp.a, 20).ok());
  ASSERT_TRUE(SetRecvTimeout(sp.a, 0).ok());  // clear
  std::thread feeder([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    RawWrite(sp.b, Frame("late"));
  });
  // With the timeout cleared this blocks past the old 20ms window.
  auto payload = RecvFramePayload(sp.a);
  feeder.join();
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  EXPECT_EQ(payload.value(), "late");
}

TEST(SocketIoTest, SendTimeoutClassifiesBoundaryVsMidFrame) {
  SocketPair sp;
  ASSERT_TRUE(SetSendTimeout(sp.b, 30).ok());
  // A frame far larger than the kernel buffer with nobody reading: some
  // bytes go out, then the armed timeout hits mid-frame.
  const std::string big = Frame(std::string(4u << 20, 'x'));
  Status mid = SendFrame(sp.b, big);
  ASSERT_FALSE(mid.ok());
  EXPECT_EQ(mid.code(), StatusCode::kIOError);
  // The buffer is now full: a fresh frame cannot move its first byte, so
  // the failure is at the frame boundary — DeadlineExceeded.
  Status boundary = SendFrame(sp.b, Frame("y"));
  ASSERT_FALSE(boundary.ok());
  EXPECT_EQ(boundary.code(), StatusCode::kDeadlineExceeded);
}

TEST(SocketIoTest, SendToClosedPeerIsIOErrorNotSignal) {
  SocketPair sp;
  sp.CloseA();
  // MSG_NOSIGNAL: EPIPE as a Status, no SIGPIPE. The first small send may
  // land in the (dead) buffer; keep pushing until the error surfaces.
  Status last;
  for (int i = 0; i < 8 && last.ok(); ++i) {
    last = SendFrame(sp.b, Frame(std::string(64 * 1024, 'z')));
  }
  ASSERT_FALSE(last.ok());
  EXPECT_EQ(last.code(), StatusCode::kIOError);
}

TEST(SocketIoTest, LargeFrameSurvivesShortReadsAndWrites) {
  // 2 MiB through a ~200 KiB kernel buffer forces both SendFrame's write
  // loop and ReadFull's read loop through many partial transfers.
  SocketPair sp;
  std::string payload(2u << 20, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>((i * 131) & 0xff);
  }
  Status send_status;
  std::thread writer(
      [&] { send_status = SendFrame(sp.b, Frame(payload)); });
  auto received = RecvFramePayload(sp.a);
  writer.join();
  ASSERT_TRUE(send_status.ok()) << send_status.ToString();
  ASSERT_TRUE(received.ok()) << received.status().ToString();
  EXPECT_EQ(received.value(), payload);
}

void NoopSignalHandler(int) {}

TEST(SocketIoTest, EintrFromARealSignalResumesTheRead) {
  // Install a SIGUSR1 handler *without* SA_RESTART so blocked reads
  // genuinely return EINTR (with SA_RESTART the kernel would hide the
  // interruption and the loop under test would never see it).
  struct sigaction action{};
  struct sigaction previous{};
  action.sa_handler = NoopSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately no SA_RESTART
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &previous), 0);

  SocketPair sp;
  const std::string payload(4096, 'q');
  const std::string frame = Frame(payload);

  Result<std::string> received = Status::Internal("not run");
  std::thread reader([&] { received = RecvFramePayload(sp.a); });
  const pthread_t reader_handle = reader.native_handle();

  // Trickle the frame while peppering the reader with signals, so EINTR
  // hits both the prefix read and the payload read with high probability.
  size_t off = 0;
  const size_t chunk = 512;
  while (off < frame.size()) {
    ::pthread_kill(reader_handle, SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const size_t n = std::min(chunk, frame.size() - off);
    RawWrite(sp.b, frame.substr(off, n));
    off += n;
  }
  for (int i = 0; i < 4; ++i) {
    ::pthread_kill(reader_handle, SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  reader.join();
  ASSERT_EQ(::sigaction(SIGUSR1, &previous, nullptr), 0);

  ASSERT_TRUE(received.ok()) << received.status().ToString();
  EXPECT_EQ(received.value(), payload);
}

}  // namespace
}  // namespace mcn::api
