#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mcn/storage/disk_manager.h"
#include "mcn/storage/page.h"
#include "mcn/storage/slotted_page.h"

namespace mcn::storage {
namespace {

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  if (!s.empty()) std::memcpy(out.data(), s.data(), s.size());
  return out;
}

TEST(DiskManagerTest, CreateFilesAndAllocate) {
  DiskManager disk;
  FileId a = disk.CreateFile("a");
  FileId b = disk.CreateFile("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(disk.num_files(), 2u);
  EXPECT_EQ(disk.FileName(a).value(), "a");

  EXPECT_EQ(disk.AllocatePage(a).value(), 0u);
  EXPECT_EQ(disk.AllocatePage(a).value(), 1u);
  EXPECT_EQ(disk.AllocatePage(b).value(), 0u);
  EXPECT_EQ(disk.NumPages(a).value(), 2u);
  EXPECT_EQ(disk.NumPages(b).value(), 1u);
  EXPECT_EQ(disk.TotalPages(), 3u);
}

TEST(DiskManagerTest, ReadWriteRoundTrip) {
  DiskManager disk;
  FileId f = disk.CreateFile("f");
  PageNo p = disk.AllocatePage(f).value();
  std::vector<std::byte> out(kPageSize, std::byte{0xAB});
  ASSERT_TRUE(disk.WritePage({f, p}, out.data()).ok());
  std::vector<std::byte> in(kPageSize);
  ASSERT_TRUE(disk.ReadPage({f, p}, in.data()).ok());
  EXPECT_EQ(std::memcmp(in.data(), out.data(), kPageSize), 0);
}

TEST(DiskManagerTest, FreshPagesAreZeroed) {
  DiskManager disk;
  FileId f = disk.CreateFile("f");
  PageNo p = disk.AllocatePage(f).value();
  std::vector<std::byte> in(kPageSize, std::byte{0xFF});
  ASSERT_TRUE(disk.ReadPage({f, p}, in.data()).ok());
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(in[i], std::byte{0});
  }
}

TEST(DiskManagerTest, CountsIo) {
  DiskManager disk;
  FileId f = disk.CreateFile("f");
  PageNo p = disk.AllocatePage(f).value();
  std::vector<std::byte> buf(kPageSize);
  EXPECT_EQ(disk.stats().page_reads, 0u);
  ASSERT_TRUE(disk.WritePage({f, p}, buf.data()).ok());
  ASSERT_TRUE(disk.ReadPage({f, p}, buf.data()).ok());
  ASSERT_TRUE(disk.ReadPage({f, p}, buf.data()).ok());
  EXPECT_EQ(disk.stats().page_writes, 1u);
  EXPECT_EQ(disk.stats().page_reads, 2u);
  disk.ResetStats();
  EXPECT_EQ(disk.stats().page_reads, 0u);
}

TEST(DiskManagerTest, ErrorsOnBadAddresses) {
  DiskManager disk;
  FileId f = disk.CreateFile("f");
  std::vector<std::byte> buf(kPageSize);
  EXPECT_EQ(disk.ReadPage({f, 0}, buf.data()).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(disk.ReadPage({f + 1, 0}, buf.data()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(disk.NumPages(f + 1).ok());
  EXPECT_FALSE(disk.AllocatePage(f + 1).ok());
}

TEST(PageIdTest, HashAndEquality) {
  PageId a{1, 2}, b{1, 2}, c{2, 1};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  PageIdHash h;
  EXPECT_EQ(h(a), h(b));
}

TEST(SlottedPageTest, AppendAndRead) {
  std::vector<std::byte> page(kPageSize, std::byte{0});
  SlottedPageBuilder builder(page.data());
  uint16_t s0, s1, s2;
  ASSERT_TRUE(builder.TryAppend(Bytes("hello"), &s0));
  ASSERT_TRUE(builder.TryAppend(Bytes(""), &s1));
  ASSERT_TRUE(builder.TryAppend(Bytes("worlds!"), &s2));
  EXPECT_EQ(s0, 0);
  EXPECT_EQ(s1, 1);
  EXPECT_EQ(s2, 2);
  EXPECT_EQ(builder.count(), 3);

  SlottedPageReader reader(page.data());
  EXPECT_EQ(reader.count(), 3);
  auto rec0 = reader.Record(0);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(rec0.data()),
                        rec0.size()),
            "hello");
  EXPECT_EQ(reader.Record(1).size(), 0u);
  auto rec2 = reader.Record(2);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(rec2.data()),
                        rec2.size()),
            "worlds!");
}

TEST(SlottedPageTest, RejectsWhenFull) {
  std::vector<std::byte> page(kPageSize, std::byte{0});
  SlottedPageBuilder builder(page.data());
  std::vector<std::byte> big(1500, std::byte{7});
  EXPECT_TRUE(builder.TryAppend(big, nullptr));
  EXPECT_TRUE(builder.TryAppend(big, nullptr));
  EXPECT_FALSE(builder.TryAppend(big, nullptr));  // 3 x 1504 > 4096
  EXPECT_EQ(builder.count(), 2);
}

TEST(SlottedPageTest, MaxRecordFitsExactly) {
  std::vector<std::byte> page(kPageSize, std::byte{0});
  SlottedPageBuilder builder(page.data());
  std::vector<std::byte> max(SlottedPageBuilder::MaxRecordSize(),
                             std::byte{1});
  EXPECT_TRUE(builder.Fits(max.size()));
  ASSERT_TRUE(builder.TryAppend(max, nullptr));
  EXPECT_EQ(builder.free_bytes(), 0u);
  EXPECT_FALSE(builder.Fits(1));

  SlottedPageReader reader(page.data());
  EXPECT_EQ(reader.Record(0).size(), max.size());
}

TEST(DiskManagerTest, StatsMergeWithPerFileBreakdown) {
  // Two managers playing the roles of two shards: same file names, so the
  // per-file rows fold by name when merged.
  DiskManager a, b;
  FileId a_adj = a.CreateFile("adjacency_file");
  FileId a_fac = a.CreateFile("facility_file");
  FileId b_adj = b.CreateFile("adjacency_file");
  std::vector<std::byte> buf(kPageSize, std::byte{0});
  ASSERT_TRUE(a.AllocatePage(a_adj).ok());
  ASSERT_TRUE(a.AllocatePage(a_fac).ok());
  ASSERT_TRUE(b.AllocatePage(b_adj).ok());

  for (int i = 0; i < 3; ++i) ASSERT_TRUE(a.ReadPage({a_adj, 0}, buf.data()).ok());
  ASSERT_TRUE(a.ReadPageRef({a_fac, 0}).ok());
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(b.ReadPageRef({b_adj, 0}).ok());

  const DiskManager::Stats sa = a.stats();
  EXPECT_EQ(sa.page_reads, 4u);
  EXPECT_EQ(sa.ReadsForFile("adjacency_file"), 3u);
  EXPECT_EQ(sa.ReadsForFile("facility_file"), 1u);
  EXPECT_EQ(sa.ReadsForFile("no_such_file"), 0u);

  DiskManager::Stats merged = sa;
  merged += b.stats();
  EXPECT_EQ(merged.page_reads, 6u);
  EXPECT_EQ(merged.ReadsForFile("adjacency_file"), 5u);
  EXPECT_EQ(merged.ReadsForFile("facility_file"), 1u);

  const std::vector<DiskManager::Stats> parts = {a.stats(), b.stats()};
  const DiskManager::Stats merged2 = DiskManager::MergeStats(parts);
  EXPECT_EQ(merged2.page_reads, merged.page_reads);
  EXPECT_EQ(merged2.ReadsForFile("adjacency_file"), 5u);

  a.ResetStats();
  EXPECT_EQ(a.stats().page_reads, 0u);
  EXPECT_EQ(a.stats().ReadsForFile("adjacency_file"), 0u);
}

TEST(SlottedPageTest, ManySmallRecords) {
  std::vector<std::byte> page(kPageSize, std::byte{0});
  SlottedPageBuilder builder(page.data());
  int count = 0;
  for (;; ++count) {
    std::string payload = "rec" + std::to_string(count);
    if (!builder.TryAppend(Bytes(payload), nullptr)) break;
  }
  EXPECT_GT(count, 300);
  SlottedPageReader reader(page.data());
  ASSERT_EQ(reader.count(), count);
  for (int i = 0; i < count; ++i) {
    auto rec = reader.Record(static_cast<uint16_t>(i));
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(rec.data()),
                          rec.size()),
              "rec" + std::to_string(i));
  }
}

}  // namespace
}  // namespace mcn::storage
