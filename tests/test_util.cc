#include "test_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "mcn/common/hash.h"
#include "mcn/common/macros.h"
#include "mcn/common/random.h"

namespace mcn::test {

DiskFixture::DiskFixture(graph::MultiCostGraph g, graph::FacilitySet f,
                         size_t buffer_frames)
    : graph(std::move(g)), facilities(std::move(f)) {
  auto built = net::BuildNetwork(&disk, graph, facilities);
  MCN_CHECK(built.ok());
  files = built.value();
  pool = std::make_unique<storage::BufferPool>(&disk, buffer_frames);
  reader = std::make_unique<net::NetworkReader>(files, pool.get());
}

graph::MultiCostGraph TinyGraph() {
  // A 3x3 grid-ish network, d = 2:
  //   0 - 1 - 2
  //   |   |   |
  //   3 - 4 - 5
  //   |   |   |
  //   6 - 7 - 8
  graph::MultiCostGraph g(2);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      g.AddNode(c, r);
    }
  }
  auto add = [&](graph::NodeId a, graph::NodeId b, double w1, double w2) {
    MCN_CHECK(g.AddEdge(a, b, graph::CostVector{w1, w2}).ok());
  };
  add(0, 1, 4.0, 1.0);
  add(1, 2, 2.0, 5.0);
  add(0, 3, 1.0, 2.0);
  add(1, 4, 3.0, 1.0);
  add(2, 5, 1.0, 1.0);
  add(3, 4, 2.0, 6.0);
  add(4, 5, 5.0, 2.0);
  add(3, 6, 6.0, 1.0);
  add(4, 7, 1.0, 4.0);
  add(5, 8, 2.0, 2.0);
  add(6, 7, 2.0, 2.0);
  add(7, 8, 3.0, 1.0);
  g.Finalize();
  return g;
}

graph::FacilitySet TinyFacilities(const graph::MultiCostGraph& g) {
  graph::FacilitySet f;
  f.Add(g.FindEdge(1, 2).value(), 0.5);
  f.Add(g.FindEdge(3, 4).value(), 0.25);
  f.Add(g.FindEdge(7, 8).value(), 0.75);
  f.Add(g.FindEdge(5, 8).value(), 0.0);
  f.Add(g.FindEdge(0, 3).value(), 1.0);
  f.Finalize();
  return f;
}

Result<std::unique_ptr<gen::Instance>> MakeSmallInstance(
    const SmallConfig& config) {
  gen::ExperimentConfig ec;
  ec.nodes = config.nodes;
  ec.edges = config.edges;
  ec.facilities = config.facilities;
  ec.clusters = 4;
  ec.num_costs = config.num_costs;
  ec.distribution = config.distribution;
  ec.buffer_pct = config.buffer_pct;
  ec.seed = config.seed;
  return gen::BuildInstance(ec);
}

OracleResult OracleReachableCosts(const graph::MultiCostGraph& g,
                                  const graph::FacilitySet& facilities,
                                  const graph::Location& q) {
  std::vector<graph::CostVector> all =
      expand::AllFacilityCosts(g, facilities, q);
  OracleResult result;
  for (graph::FacilityId f = 0; f < facilities.size(); ++f) {
    bool reachable = true;
    for (int i = 0; i < g.num_costs(); ++i) {
      if (all[f][i] == expand::kInfCost) reachable = false;
    }
    if (reachable) {
      result.ids.push_back(f);
      result.costs.push_back(all[f]);
    }
  }
  return result;
}

std::set<graph::FacilityId> OracleSkyline(const graph::MultiCostGraph& g,
                                          const graph::FacilitySet& facs,
                                          const graph::Location& q) {
  OracleResult r = OracleReachableCosts(g, facs, q);
  std::set<graph::FacilityId> sky;
  for (size_t i = 0; i < r.ids.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < r.ids.size() && !dominated; ++j) {
      if (i != j && r.costs[j].Dominates(r.costs[i])) dominated = true;
    }
    if (!dominated) sky.insert(r.ids[i]);
  }
  return sky;
}

std::vector<algo::TopKEntry> OracleTopK(const graph::MultiCostGraph& g,
                                        const graph::FacilitySet& facs,
                                        const graph::Location& q,
                                        const algo::AggregateFn& f, int k) {
  OracleResult r = OracleReachableCosts(g, facs, q);
  std::vector<algo::TopKEntry> entries;
  entries.reserve(r.ids.size());
  for (size_t i = 0; i < r.ids.size(); ++i) {
    entries.push_back(algo::TopKEntry{r.ids[i], r.costs[i], f(r.costs[i])});
  }
  std::sort(entries.begin(), entries.end(),
            [](const algo::TopKEntry& a, const algo::TopKEntry& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.facility < b.facility;
            });
  if (static_cast<int>(entries.size()) > k) entries.resize(k);
  return entries;
}

std::vector<double> TestWeights(int d, uint64_t seed) {
  Random rng(seed);
  std::vector<double> w(d);
  for (double& x : w) x = rng.UniformDouble(0.05, 1.0);
  return w;
}

uint64_t TestSeed(uint64_t fallback) {
  const char* env = std::getenv("MCN_TEST_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  uint64_t seed = std::strtoull(env, &end, 10);
  MCN_CHECK(end != nullptr && *end == '\0');  // malformed MCN_TEST_SEED
  return seed;
}

uint64_t AnnounceSeed(const char* test_name, uint64_t fallback) {
  uint64_t seed = TestSeed(fallback);
  std::fprintf(stderr,
               "[ seed     ] %s: %llu (rerun: MCN_TEST_SEED=%llu ctest -R "
               "%s)\n",
               test_name, static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(seed), test_name);
  return seed;
}

uint64_t DeriveSeed(uint64_t base, uint64_t index) {
  // Golden-ratio stride + the shared mixer; avoids correlated instance
  // streams when sweeping nearby indices.
  return MixU64(base + 0x9E3779B97F4A7C15ull * (index + 1));
}

}  // namespace mcn::test
