// Shared helpers for the mcn test suite: handcrafted fixtures, random
// instance builders, and the in-memory oracle the disk algorithms are
// verified against.
#ifndef MCN_TESTS_TEST_UTIL_H_
#define MCN_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "mcn/algo/common.h"
#include "mcn/expand/dijkstra.h"
#include "mcn/gen/workload.h"
#include "mcn/graph/facility.h"
#include "mcn/graph/location.h"
#include "mcn/graph/multi_cost_graph.h"
#include "mcn/net/network_builder.h"
#include "mcn/net/network_reader.h"
#include "mcn/storage/buffer_pool.h"
#include "mcn/storage/disk_manager.h"

namespace mcn::test {

/// A graph + facilities materialized on a fresh simulated disk.
struct DiskFixture {
  DiskFixture(graph::MultiCostGraph g, graph::FacilitySet f,
              size_t buffer_frames);

  graph::MultiCostGraph graph;
  graph::FacilitySet facilities;
  storage::DiskManager disk;
  net::NetworkFiles files;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<net::NetworkReader> reader;
};

/// The running example of the paper's Fig. 1 flavor: a small two-cost
/// network with a handful of facilities, fully hand-checkable.
///   d = 2 (think: minutes, dollars).
graph::MultiCostGraph TinyGraph();
graph::FacilitySet TinyFacilities(const graph::MultiCostGraph& g);

/// Small random instance for property sweeps (nodes ~ a few hundred).
struct SmallConfig {
  uint32_t nodes = 400;
  uint32_t edges = 520;
  uint32_t facilities = 60;
  int num_costs = 3;
  gen::CostDistribution distribution =
      gen::CostDistribution::kAntiCorrelated;
  double buffer_pct = 1.0;
  uint64_t seed = 1;
};
Result<std::unique_ptr<gen::Instance>> MakeSmallInstance(
    const SmallConfig& config);

/// Oracle: exact cost vectors via d in-memory Dijkstras; facilities
/// unreachable from q (infinite vectors) are excluded — the library's
/// documented semantics.
struct OracleResult {
  std::vector<graph::FacilityId> ids;
  std::vector<graph::CostVector> costs;  // parallel to `ids`
};
OracleResult OracleReachableCosts(const graph::MultiCostGraph& g,
                                  const graph::FacilitySet& facilities,
                                  const graph::Location& q);

/// Oracle skyline ids (strict dominance) as a sorted set.
std::set<graph::FacilityId> OracleSkyline(const graph::MultiCostGraph& g,
                                          const graph::FacilitySet& facs,
                                          const graph::Location& q);

/// Oracle top-k entries sorted by (score, id).
std::vector<algo::TopKEntry> OracleTopK(const graph::MultiCostGraph& g,
                                        const graph::FacilitySet& facs,
                                        const graph::Location& q,
                                        const algo::AggregateFn& f, int k);

/// Deterministic weights in (0,1] for aggregate functions.
std::vector<double> TestWeights(int d, uint64_t seed);

/// Base seed for randomized tests: the `MCN_TEST_SEED` environment
/// variable when set (decimal), else `fallback`. Every randomized test
/// derives all of its seeds from this one value, so any red run is
/// reproducible from the logged seed alone.
uint64_t TestSeed(uint64_t fallback = 24155u);

/// TestSeed() + a log line with the effective seed and the reproduction
/// command; call once on entry of every randomized test.
uint64_t AnnounceSeed(const char* test_name, uint64_t fallback = 24155u);

/// Deterministic per-case seed derived from a base seed (splitmix-style,
/// so nearby indices decorrelate).
uint64_t DeriveSeed(uint64_t base, uint64_t index);

}  // namespace mcn::test

#endif  // MCN_TESTS_TEST_UTIL_H_
