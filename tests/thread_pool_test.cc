#include "mcn/exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace mcn::exec {
namespace {

TEST(ThreadPoolTest, ExecutesEverySubmittedTask) {
  std::atomic<uint64_t> sum{0};
  {
    ThreadPool<int> pool(4, 16, [&sum](int&& v, int) { sum.fetch_add(v); });
    for (int i = 1; i <= 1000; ++i) EXPECT_TRUE(pool.Submit(int{i}));
    pool.Drain();
    EXPECT_EQ(sum.load(), 1000u * 1001 / 2);
    EXPECT_EQ(pool.executed(), 1000u);
  }
}

TEST(ThreadPoolTest, WorkerIndicesAreInRangeAndAllWorkersRun) {
  constexpr int kWorkers = 4;
  std::mutex mu;
  std::set<int> seen;
  ThreadPool<int> pool(kWorkers, 8, [&](int&&, int worker) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, kWorkers);
    // Slow the task down a little so the work spreads over all workers.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(worker);
  });
  for (int i = 0; i < 200; ++i) EXPECT_TRUE(pool.Submit(int{i}));
  pool.Drain();
  EXPECT_EQ(seen.size(), static_cast<size_t>(kWorkers));
}

TEST(ThreadPoolTest, OversubscriptionBeyondQueueCapacity) {
  // More in-flight tasks than workers and more submissions than ring
  // capacity: Submit applies back-pressure and nothing is lost.
  std::atomic<int> executed{0};
  ThreadPool<int> pool(2, 4, [&](int&&, int) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    executed.fetch_add(1);
  });
  for (int i = 0; i < 500; ++i) EXPECT_TRUE(pool.Submit(int{i}));
  pool.Drain();
  EXPECT_EQ(executed.load(), 500);
}

TEST(ThreadPoolTest, DrainWaitsForRunningTasks) {
  std::atomic<bool> release{false};
  std::atomic<int> done{0};
  ThreadPool<int> pool(2, 8, [&](int&&, int) {
    while (!release.load()) std::this_thread::yield();
    done.fetch_add(1);
  });
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(pool.Submit(int{i}));
  EXPECT_EQ(done.load(), 0);
  release.store(true);
  pool.Drain();
  EXPECT_EQ(done.load(), 4);
}

TEST(ThreadPoolTest, ShutdownWithDrainRunsBacklog) {
  std::atomic<int> executed{0};
  ThreadPool<int> pool(1, 64, [&](int&&, int) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    executed.fetch_add(1);
  });
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(pool.Submit(int{i}));
  pool.Shutdown(/*drain=*/true);
  EXPECT_EQ(executed.load(), 50);
  // The pool no longer accepts work.
  EXPECT_FALSE(pool.Submit(int{1}));
  // Idempotent.
  pool.Shutdown(/*drain=*/true);
  pool.Shutdown(/*drain=*/false);
}

TEST(ThreadPoolTest, ShutdownWithoutDrainDiscardsBacklog) {
  std::atomic<bool> block{true};
  std::atomic<int> executed{0};
  ThreadPool<int> pool(1, 64, [&](int&&, int) {
    while (block.load()) std::this_thread::yield();
    executed.fetch_add(1);
  });
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(pool.Submit(int{i}));
  // The single worker is stuck in the first task; release it and shut down
  // hard: whatever is still queued when the worker exits is discarded.
  block.store(false);
  pool.Shutdown(/*drain=*/false);
  EXPECT_LE(executed.load(), 20);
  EXPECT_FALSE(pool.Submit(int{1}));
}

TEST(ThreadPoolTest, DiscardedTasksGoThroughTheDiscardHandler) {
  // Every submitted task must end up either executed or discarded — with
  // a bundled promise settled either way, so no consumer ever hangs.
  struct Task {
    std::promise<int> promise;
    bool real = false;
  };
  std::atomic<bool> block{true};
  std::atomic<int> executed{0};
  std::atomic<int> discarded{0};
  auto pool = std::make_unique<ThreadPool<Task>>(
      1, 64,
      [&](Task&& t, int) {
        while (block.load()) std::this_thread::yield();
        executed.fetch_add(1);
        if (t.real) t.promise.set_value(42);
      },
      [&](Task&& t) {
        discarded.fetch_add(1);
        if (t.real) t.promise.set_value(-1);
      });
  constexpr int kTasks = 20;
  std::vector<std::future<int>> futures;
  for (int i = 0; i < kTasks; ++i) {
    Task task;
    task.real = true;
    futures.push_back(task.promise.get_future());
    ASSERT_TRUE(pool->Submit(std::move(task)));
  }
  // The single worker is parked in the first task; release it and
  // hard-stop: the backlog goes through the discard handler.
  block.store(false);
  pool->Shutdown(/*drain=*/false);
  int completed = 0, dropped = 0;
  for (auto& f : futures) {
    (f.get() == 42 ? completed : dropped) += 1;
  }
  EXPECT_EQ(completed + dropped, kTasks);
  EXPECT_EQ(completed, executed.load());
  EXPECT_EQ(dropped, discarded.load());
}

}  // namespace
}  // namespace mcn::exec
