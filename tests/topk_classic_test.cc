#include <gtest/gtest.h>

#include <cmath>

#include "mcn/common/random.h"
#include "mcn/gen/cost_generator.h"
#include "mcn/topk/topk.h"

namespace mcn::topk {
namespace {

std::vector<skyline::Tuple> RandomTuples(Random& rng, int n, int d,
                                         gen::CostDistribution dist) {
  std::vector<skyline::Tuple> tuples;
  for (int i = 0; i < n; ++i) {
    tuples.push_back(skyline::Tuple{
        static_cast<uint32_t>(i), gen::GenerateEdgeCosts(rng, dist, d, 1.0)});
  }
  return tuples;
}

void ExpectSameScores(const std::vector<RankedItem>& got,
                      const std::vector<RankedItem>& expected) {
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].score, expected[i].score, 1e-12) << "rank " << i;
  }
}

TEST(ThresholdAlgorithmTest, EmptyInput) {
  algo::AggregateFn f = algo::WeightedSum({1.0, 1.0});
  EXPECT_TRUE(ThresholdAlgorithm({}, f, 3).empty());
  EXPECT_TRUE(NoRandomAccessTopK({}, f, 3).empty());
}

TEST(ThresholdAlgorithmTest, HandExample) {
  std::vector<skyline::Tuple> data{
      {0, graph::CostVector{1, 9}},
      {1, graph::CostVector{5, 5}},
      {2, graph::CostVector{9, 1}},
      {3, graph::CostVector{2, 2}},
  };
  algo::AggregateFn f = algo::WeightedSum({1.0, 1.0});
  auto top2 = ThresholdAlgorithm(data, f, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].id, 3u);  // score 4
  EXPECT_EQ(top2[0].score, 4.0);
  EXPECT_EQ(top2[1].score, 10.0);  // any of 0/1/2
}

TEST(ThresholdAlgorithmTest, StopsBeforeFullScanOnFriendlyData) {
  // One clearly-best tuple: TA should terminate after few rounds.
  std::vector<skyline::Tuple> data;
  Random rng(3);
  for (int i = 1; i <= 1000; ++i) {
    double v = 10.0 + i;
    data.push_back(skyline::Tuple{static_cast<uint32_t>(i),
                                  graph::CostVector{v, v}});
  }
  data.push_back(skyline::Tuple{0, graph::CostVector{1.0, 1.0}});
  algo::AggregateFn f = algo::WeightedSum({0.5, 0.5});
  TaStats stats;
  auto top1 = ThresholdAlgorithm(data, f, 1, &stats);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0].id, 0u);
  EXPECT_LT(stats.rounds, 10u);
  EXPECT_LT(stats.sorted_accesses, 50u);
}

struct ClassicParam {
  int n;
  int d;
  int k;
  uint64_t seed;
};

class ClassicTopKSweep : public ::testing::TestWithParam<ClassicParam> {};

TEST_P(ClassicTopKSweep, TaMatchesBruteForce) {
  const ClassicParam& p = GetParam();
  Random rng(p.seed);
  auto data = RandomTuples(rng, p.n, p.d,
                           gen::CostDistribution::kIndependent);
  std::vector<double> weights(p.d);
  for (double& w : weights) w = rng.UniformDouble(0.1, 1.0);
  algo::AggregateFn f = algo::WeightedSum(weights);
  ExpectSameScores(ThresholdAlgorithm(data, f, p.k),
                   BruteForceTopK(data, f, p.k));
}

TEST_P(ClassicTopKSweep, NraMatchesBruteForce) {
  const ClassicParam& p = GetParam();
  Random rng(p.seed + 100);
  auto data = RandomTuples(rng, p.n, p.d,
                           gen::CostDistribution::kAntiCorrelated);
  std::vector<double> weights(p.d);
  for (double& w : weights) w = rng.UniformDouble(0.1, 1.0);
  algo::AggregateFn f = algo::WeightedSum(weights);
  NraStats stats;
  ExpectSameScores(NoRandomAccessTopK(data, f, p.k, &stats),
                   BruteForceTopK(data, f, p.k));
  EXPECT_GT(stats.sorted_accesses, 0u);
}

TEST_P(ClassicTopKSweep, KLargerThanInput) {
  const ClassicParam& p = GetParam();
  Random rng(p.seed + 200);
  auto data = RandomTuples(rng, 5, p.d, gen::CostDistribution::kCorrelated);
  std::vector<double> weights(p.d, 1.0);
  algo::AggregateFn f = algo::WeightedSum(weights);
  EXPECT_EQ(ThresholdAlgorithm(data, f, 50).size(), 5u);
  EXPECT_EQ(NoRandomAccessTopK(data, f, 50).size(), 5u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClassicTopKSweep,
    ::testing::Values(ClassicParam{100, 2, 1, 11},
                      ClassicParam{100, 2, 5, 12},
                      ClassicParam{500, 3, 10, 13},
                      ClassicParam{500, 4, 3, 14},
                      ClassicParam{1000, 4, 16, 15},
                      ClassicParam{1000, 5, 7, 16}));

TEST(ThresholdAlgorithmTest, NonLinearMonotoneAggregate) {
  Random rng(9);
  auto data = RandomTuples(rng, 300, 3,
                           gen::CostDistribution::kIndependent);
  // max() is increasingly monotone too.
  algo::AggregateFn f = [](const graph::CostVector& c) {
    return c.MaxComponent();
  };
  ExpectSameScores(ThresholdAlgorithm(data, f, 5),
                   BruteForceTopK(data, f, 5));
  ExpectSameScores(NoRandomAccessTopK(data, f, 5),
                   BruteForceTopK(data, f, 5));
}

}  // namespace
}  // namespace mcn::topk
