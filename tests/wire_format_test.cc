// Wire-format invariants (DESIGN.md §9): exhaustive encode/decode
// round-trips over randomized QuerySpec/QueryResponse values, canonical
// re-encoding (encode(decode(b)) == b), and rejection — never a crash —
// of truncated frames, bit-flipped garbage, trailing bytes and version
// mismatches.
#include "mcn/api/wire.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mcn/algo/result_hash.h"
#include "mcn/common/random.h"
#include "test_util.h"

namespace mcn::api {
namespace {

QuerySpec RandomSpec(Random& rng) {
  QuerySpec spec;
  const int d = 1 + static_cast<int>(rng.Next() % 5);
  spec.kind = static_cast<QueryKind>(rng.Next() % 3);
  if (rng.Next() % 2 == 0) {
    spec.location = graph::Location::AtNode(
        static_cast<graph::NodeId>(rng.Next() % 100000));
  } else {
    const auto a = static_cast<graph::NodeId>(rng.Next() % 100000);
    const auto b = static_cast<graph::NodeId>(1 + rng.Next() % 99999);
    spec.location = graph::Location::OnEdge(
        graph::EdgeKey(a, a == b ? b + 1 : b), rng.NextDouble());
  }
  spec.k = 1 + static_cast<int32_t>(rng.Next() % 64);
  spec.engine = rng.Next() % 2 == 0 ? expand::EngineKind::kLsa
                                          : expand::EngineKind::kCea;
  spec.parallelism = static_cast<int32_t>(rng.Next() % 5);
  // Half the specs carry a deadline (v2 field), half keep the 0 default.
  if (rng.Next() % 2 == 0) {
    spec.deadline_ms = 1 + static_cast<int32_t>(rng.Next() % 600000);
  }
  if (spec.kind != QueryKind::kSkyline) {
    for (int j = 0; j < d; ++j) {
      spec.preference.weights.push_back(rng.NextDouble() * 10.0);
    }
  }
  if (spec.kind == QueryKind::kSkyline && rng.Next() % 2 == 0) {
    spec.preference.constraints.epsilon = rng.NextDouble();
  }
  if (rng.Next() % 2 == 0) {
    for (int j = 0; j < d; ++j) {
      spec.preference.constraints.cost_caps.push_back(rng.NextDouble() *
                                                      1000.0);
    }
  }
  return spec;
}

QueryResponse RandomResponse(Random& rng) {
  QueryResponse response;
  response.kind = static_cast<QueryKind>(rng.Next() % 3);
  if (rng.Next() % 8 == 0) {
    response.status = Status::InvalidArgument("synthetic failure");
    response.result_hash = algo::kFnvOffsetBasis;
    return response;
  }
  const int d = 1 + static_cast<int>(rng.Next() % 5);
  const int rows = static_cast<int>(rng.Next() % 20);
  for (int r = 0; r < rows; ++r) {
    if (response.kind == QueryKind::kSkyline) {
      algo::SkylineEntry e;
      e.facility = static_cast<graph::FacilityId>(rng.Next() % 1000000);
      e.known_mask =
          static_cast<uint32_t>(rng.Next() % (1ull << d));
      e.costs = graph::CostVector(d);
      for (int j = 0; j < d; ++j) e.costs[j] = rng.NextDouble() * 1e4;
      response.skyline.push_back(e);
    } else {
      algo::TopKEntry e;
      e.facility = static_cast<graph::FacilityId>(rng.Next() % 1000000);
      e.score = rng.NextDouble() * 1e4;
      e.costs = graph::CostVector(d);
      for (int j = 0; j < d; ++j) e.costs[j] = rng.NextDouble() * 1e4;
      response.topk.push_back(e);
    }
  }
  response.exhausted = rng.Next() % 2 == 0;
  response.RehashRows();
  response.buffer_misses = rng.Next() % 100000;
  response.buffer_accesses = rng.Next() % 1000000;
  response.exec_seconds = rng.NextDouble();
  return response;
}

std::string PayloadOf(const std::string& frame) {
  EXPECT_GE(frame.size(), 4u);
  return frame.substr(4);
}

bool SameRows(const QueryResponse& a, const QueryResponse& b) {
  // Rows and hash compare via the shared FNV hash (order-sensitive, bit
  // patterns included) — the same identity every parity gate uses.
  const uint64_t ha = a.kind == QueryKind::kSkyline
                          ? algo::HashResult(a.skyline)
                          : algo::HashResult(a.topk);
  const uint64_t hb = b.kind == QueryKind::kSkyline
                          ? algo::HashResult(b.skyline)
                          : algo::HashResult(b.topk);
  return ha == hb && a.num_rows() == b.num_rows();
}

TEST(WireFormatTest, SpecRoundTripRandomized) {
  const uint64_t seed = test::AnnounceSeed("WireFormatTest.Spec");
  Random rng(seed);
  for (int i = 0; i < 500; ++i) {
    WireRequest request;
    request.type =
        rng.Next() % 2 == 0 ? MsgType::kExecute : MsgType::kOpenSession;
    request.spec = RandomSpec(rng);
    const std::string frame = EncodeRequestFrame(request);
    auto decoded = DecodeRequestPayload(PayloadOf(frame));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().type, request.type);
    ASSERT_TRUE(decoded.value().spec == request.spec) << "iteration " << i;
    // Canonical: re-encoding reproduces the identical bytes.
    EXPECT_EQ(EncodeRequestFrame(decoded.value()), frame);
  }
}

TEST(WireFormatTest, SessionRequestRoundTrip) {
  for (uint64_t id : {0ull, 1ull, 127ull, 128ull, 1ull << 40}) {
    WireRequest next;
    next.type = MsgType::kNext;
    next.session_id = id;
    next.batch_n = 17;
    const std::string frame = EncodeRequestFrame(next);
    auto decoded = DecodeRequestPayload(PayloadOf(frame));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().session_id, id);
    EXPECT_EQ(decoded.value().batch_n, 17);
    EXPECT_EQ(EncodeRequestFrame(decoded.value()), frame);

    WireRequest close;
    close.type = MsgType::kCloseSession;
    close.session_id = id;
    auto closed = DecodeRequestPayload(PayloadOf(EncodeRequestFrame(close)));
    ASSERT_TRUE(closed.ok());
    EXPECT_EQ(closed.value().session_id, id);
  }
}

TEST(WireFormatTest, ResponseRoundTripRandomized) {
  const uint64_t seed = test::AnnounceSeed("WireFormatTest.Response");
  Random rng(seed ^ 0x9E3779B97F4A7C15ull);
  for (int i = 0; i < 500; ++i) {
    WireResponse response;
    response.type = MsgType::kResponse;
    response.response = RandomResponse(rng);
    const std::string frame = EncodeResponseFrame(response);
    auto decoded = DecodeResponsePayload(PayloadOf(frame));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    const QueryResponse& got = decoded.value().response;
    EXPECT_EQ(got.status, response.response.status);
    EXPECT_EQ(got.kind, response.response.kind);
    EXPECT_EQ(got.exhausted, response.response.exhausted);
    EXPECT_EQ(got.result_hash, response.response.result_hash);
    EXPECT_EQ(got.buffer_misses, response.response.buffer_misses);
    EXPECT_EQ(got.buffer_accesses, response.response.buffer_accesses);
    EXPECT_TRUE(SameRows(got, response.response)) << "iteration " << i;
    EXPECT_EQ(EncodeResponseFrame(decoded.value()), frame);
  }
}

TEST(WireFormatTest, SessionControlResponsesRoundTrip) {
  WireResponse opened;
  opened.type = MsgType::kSessionOpened;
  opened.session_id = 42;
  auto o = DecodeResponsePayload(PayloadOf(EncodeResponseFrame(opened)));
  ASSERT_TRUE(o.ok());
  EXPECT_EQ(o.value().session_id, 42u);
  EXPECT_TRUE(o.value().status.ok());

  WireResponse failed;
  failed.type = MsgType::kSessionOpened;
  failed.status = Status::FailedPrecondition("table full");
  auto f = DecodeResponsePayload(PayloadOf(EncodeResponseFrame(failed)));
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value().status, failed.status);

  WireResponse closed;
  closed.type = MsgType::kSessionClosed;
  closed.status = Status::NotFound("unknown session 7");
  auto c = DecodeResponsePayload(PayloadOf(EncodeResponseFrame(closed)));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().status, closed.status);
}

TEST(WireFormatTest, RejectsTruncationEverywhere) {
  // Every proper prefix of a valid payload must decode to an error (and
  // never crash): the strongest statement that no read is unchecked.
  Random rng(7);
  WireRequest request;
  request.type = MsgType::kExecute;
  request.spec = RandomSpec(rng);
  const std::string payload = PayloadOf(EncodeRequestFrame(request));
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    auto decoded = DecodeRequestPayload(payload.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "prefix length " << cut << " accepted";
  }
  WireResponse response;
  response.type = MsgType::kResponse;
  response.response = RandomResponse(rng);
  const std::string rp = PayloadOf(EncodeResponseFrame(response));
  for (size_t cut = 0; cut < rp.size(); ++cut) {
    EXPECT_FALSE(DecodeResponsePayload(rp.substr(0, cut)).ok())
        << "prefix length " << cut << " accepted";
  }
}

TEST(WireFormatTest, RejectsTrailingBytes) {
  WireRequest request;
  request.type = MsgType::kCloseSession;
  request.session_id = 9;
  std::string payload = PayloadOf(EncodeRequestFrame(request));
  payload.push_back('\0');
  auto decoded = DecodeRequestPayload(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(WireFormatTest, RejectsVersionMismatch) {
  WireRequest request;
  request.type = MsgType::kExecute;
  request.spec = SkylineSpec(graph::Location::AtNode(3));
  std::string payload = PayloadOf(EncodeRequestFrame(request));
  payload[0] = static_cast<char>(kWireVersion + 1);
  auto decoded = DecodeRequestPayload(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("version"), std::string::npos);
  payload[0] = 0;
  EXPECT_FALSE(DecodeRequestPayload(payload).ok());
}

TEST(WireFormatTest, RejectsUnknownTypesAndEnums) {
  std::string payload;
  payload.push_back(static_cast<char>(kWireVersion));
  payload.push_back(static_cast<char>(0x7F));  // unknown request type
  EXPECT_FALSE(DecodeRequestPayload(payload).ok());
  payload[1] = static_cast<char>(0xFF);  // unknown response type
  EXPECT_FALSE(DecodeResponsePayload(payload).ok());

  // Valid execute frame with an out-of-range kind byte.
  WireRequest request;
  request.type = MsgType::kExecute;
  request.spec = SkylineSpec(graph::Location::AtNode(3));
  std::string spec_payload = PayloadOf(EncodeRequestFrame(request));
  spec_payload[2] = 17;  // kind byte
  EXPECT_FALSE(DecodeRequestPayload(spec_payload).ok());
}

TEST(WireFormatTest, RejectsIdsBeyond32Bits) {
  // A node id of 2^32 + 3 is a perfectly valid varint; decoding must
  // reject it rather than silently truncate to node 3.
  std::string payload;
  payload.push_back(static_cast<char>(kWireVersion));
  payload.push_back(static_cast<char>(MsgType::kCloseSession));
  // session ids are 64-bit: this one must decode fine.
  const uint64_t big = (1ull << 32) + 3;
  for (uint64_t v = big; true; v >>= 7) {
    if (v >= 0x80) {
      payload.push_back(static_cast<char>((v & 0x7F) | 0x80));
    } else {
      payload.push_back(static_cast<char>(v));
      break;
    }
  }
  ASSERT_TRUE(DecodeRequestPayload(payload).ok());

  // The same bytes as a node id inside an execute spec must be rejected.
  WireRequest request;
  request.type = MsgType::kExecute;
  request.spec = SkylineSpec(graph::Location::AtNode(3));
  std::string spec_payload = PayloadOf(EncodeRequestFrame(request));
  // Grammar: kind(1) engine(1) parallelism(1) k(1) deadline_ms(1)
  // loc_tag(1) node(1).
  // Splice the 5-byte big varint in place of the 1-byte node id.
  const size_t node_pos = 2 + 6;  // version+type, then 6 single-byte fields
  std::string mutated = spec_payload.substr(0, node_pos);
  mutated += payload.substr(2);  // the big varint encoded above
  mutated += spec_payload.substr(node_pos + 1);
  auto decoded = DecodeRequestPayload(mutated);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("out of range"),
            std::string::npos)
      << decoded.status().ToString();
}

TEST(WireFormatTest, TryEncodeBoundsOversizedResponses) {
  // A response whose rows exceed the frame cap must come back OutOfRange
  // from TryEncodeResponseFrame (the server's path for peer-sized
  // payloads) instead of aborting.
  WireResponse response;
  response.type = MsgType::kResponse;
  response.response.kind = QueryKind::kTopK;
  algo::TopKEntry row;
  row.facility = 1;
  row.score = 1.0;
  row.costs = graph::CostVector(4, 1.0);
  // ~42 bytes per row: 450k rows is comfortably past the 16 MiB cap.
  response.response.topk.assign(450000, row);
  auto frame = TryEncodeResponseFrame(response);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kOutOfRange);

  response.response.topk.resize(3);
  auto small = TryEncodeResponseFrame(response);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small.value(), EncodeResponseFrame(response));
}

TEST(WireFormatTest, GarbageFuzzNeverCrashes) {
  const uint64_t seed = test::AnnounceSeed("WireFormatTest.Fuzz");
  Random rng(seed ^ 0xC0FFEEull);
  // Pure random payloads.
  for (int i = 0; i < 2000; ++i) {
    std::string payload;
    const int len = static_cast<int>(rng.Next() % 64);
    for (int b = 0; b < len; ++b) {
      payload.push_back(static_cast<char>(rng.Next() & 0xFF));
    }
    (void)DecodeRequestPayload(payload);
    (void)DecodeResponsePayload(payload);
  }
  // Structured fuzz: single-byte mutations of valid frames must either
  // decode cleanly (the mutation hit a don't-care bit pattern, e.g. a
  // float payload byte) or fail with a Status — never crash or hang.
  WireResponse response;
  response.type = MsgType::kResponse;
  response.response = RandomResponse(rng);
  const std::string base = PayloadOf(EncodeResponseFrame(response));
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = base;
    const size_t pos = rng.Next() % mutated.size();
    mutated[pos] = static_cast<char>(mutated[pos] ^
                                     (1u << (rng.Next() % 8)));
    auto decoded = DecodeResponsePayload(mutated);
    if (decoded.ok()) {
      // Canonical invariant holds even for accepted mutants.
      EXPECT_EQ(PayloadOf(EncodeResponseFrame(decoded.value())), mutated);
    }
  }
}

// ----------------------------------------------- introspection messages

obs::Snapshot RandomSnapshot(Random& rng) {
  obs::Snapshot snapshot;
  const int counters = static_cast<int>(rng.Next() % 6);
  for (int i = 0; i < counters; ++i) {
    snapshot.AddCounter("mcn.test.counter." + std::to_string(i),
                        rng.Next() >> (rng.Next() % 48));
  }
  const int gauges = static_cast<int>(rng.Next() % 4);
  for (int i = 0; i < gauges; ++i) {
    snapshot.SetGauge("mcn.test.gauge." + std::to_string(i),
                      rng.NextDouble() * 1e6);
  }
  const int hists = static_cast<int>(rng.Next() % 3);
  for (int i = 0; i < hists; ++i) {
    obs::HistogramSnapshot h;
    h.name = "mcn.test.hist." + std::to_string(i);
    // Canonical sparse form: strictly ascending indices, nonzero counts,
    // total count derived from the buckets.
    uint32_t index = 0;
    const int buckets = static_cast<int>(rng.Next() % 8);
    for (int b = 0; b < buckets; ++b) {
      index += 1 + static_cast<uint32_t>(rng.Next() % 50);
      if (index >= obs::Histogram::kNumBuckets) break;
      const uint64_t count = 1 + rng.Next() % 1000;
      h.buckets.emplace_back(index, count);
      h.count += count;
      h.sum += count * obs::Histogram::BucketLowerBound(index);
    }
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

TEST(WireFormatTest, IntrospectionRequestsRoundTrip) {
  for (MsgType type : {MsgType::kGetMetrics, MsgType::kGetTrace}) {
    WireRequest request;
    request.type = type;
    const std::string frame = EncodeRequestFrame(request);
    // Empty body: version + type only.
    EXPECT_EQ(frame.size(), 4u + 2u);
    auto decoded = DecodeRequestPayload(PayloadOf(frame));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().type, type);
    EXPECT_EQ(EncodeRequestFrame(decoded.value()), frame);

    // The body is empty by the grammar: trailing bytes are corruption.
    std::string trailing = PayloadOf(frame);
    trailing.push_back('\0');
    EXPECT_FALSE(DecodeRequestPayload(trailing).ok());
  }
}

TEST(WireFormatTest, MetricsResponseRoundTripRandomized) {
  const uint64_t seed = test::AnnounceSeed("WireFormatTest.Metrics");
  Random rng(seed ^ 0xAB5Cull);
  for (int i = 0; i < 200; ++i) {
    WireResponse response;
    response.type = MsgType::kMetrics;
    if (i % 10 == 0) {
      response.status = Status::Internal("scrape failed");
    } else {
      response.snapshot = RandomSnapshot(rng);
    }
    const std::string frame = EncodeResponseFrame(response);
    auto decoded = DecodeResponsePayload(PayloadOf(frame));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().type, MsgType::kMetrics);
    EXPECT_EQ(decoded.value().status, response.status);
    const obs::Snapshot& got = decoded.value().snapshot;
    ASSERT_EQ(got.counters.size(), response.snapshot.counters.size());
    for (size_t c = 0; c < got.counters.size(); ++c) {
      EXPECT_EQ(got.counters[c].name, response.snapshot.counters[c].name);
      EXPECT_EQ(got.counters[c].value, response.snapshot.counters[c].value);
    }
    ASSERT_EQ(got.gauges.size(), response.snapshot.gauges.size());
    for (size_t g = 0; g < got.gauges.size(); ++g) {
      EXPECT_EQ(got.gauges[g].name, response.snapshot.gauges[g].name);
      // f64 on the wire is the raw bit pattern: bit-exact round trip.
      EXPECT_EQ(got.gauges[g].value, response.snapshot.gauges[g].value);
    }
    ASSERT_EQ(got.histograms.size(), response.snapshot.histograms.size());
    for (size_t h = 0; h < got.histograms.size(); ++h) {
      const auto& a = got.histograms[h];
      const auto& b = response.snapshot.histograms[h];
      EXPECT_EQ(a.name, b.name);
      EXPECT_EQ(a.sum, b.sum);
      EXPECT_EQ(a.buckets, b.buckets);
      // The total count is derived, never transported redundantly.
      EXPECT_EQ(a.count, b.count);
    }
    // Canonical: re-encoding the decoded value reproduces the frame.
    EXPECT_EQ(EncodeResponseFrame(decoded.value()), frame);
  }
}

TEST(WireFormatTest, TraceResponseRoundTrip) {
  WireResponse response;
  response.type = MsgType::kTrace;
  // The JSON document is opaque bytes to the wire layer — include the
  // full byte alphabet to prove it.
  for (int i = 0; i < 256; ++i) {
    response.trace_json.push_back(static_cast<char>(i));
  }
  const std::string frame = EncodeResponseFrame(response);
  auto decoded = DecodeResponsePayload(PayloadOf(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().type, MsgType::kTrace);
  EXPECT_EQ(decoded.value().trace_json, response.trace_json);
  EXPECT_EQ(EncodeResponseFrame(decoded.value()), frame);

  WireResponse failed;
  failed.type = MsgType::kTrace;
  failed.status = Status::Unimplemented("tracing compiled out");
  auto f = DecodeResponsePayload(PayloadOf(EncodeResponseFrame(failed)));
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value().status, failed.status);
}

TEST(WireFormatTest, IntrospectionResponsesRejectTruncationAndGarbage) {
  const uint64_t seed = test::AnnounceSeed("WireFormatTest.MetricsFuzz");
  Random rng(seed ^ 0xFEEDull);
  WireResponse response;
  response.type = MsgType::kMetrics;
  response.snapshot = RandomSnapshot(rng);
  while (response.snapshot.counters.empty() ||
         response.snapshot.histograms.empty()) {
    response.snapshot = RandomSnapshot(rng);
  }
  const std::string payload = PayloadOf(EncodeResponseFrame(response));
  // Every proper prefix must fail cleanly.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodeResponsePayload(payload.substr(0, cut)).ok())
        << "prefix length " << cut << " accepted";
  }
  // Bit-flip fuzz: accepted mutants must still re-encode canonically.
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = payload;
    const size_t pos = rng.Next() % mutated.size();
    mutated[pos] =
        static_cast<char>(mutated[pos] ^ (1u << (rng.Next() % 8)));
    auto decoded = DecodeResponsePayload(mutated);
    if (decoded.ok()) {
      EXPECT_EQ(PayloadOf(EncodeResponseFrame(decoded.value())), mutated);
    }
  }
}

}  // namespace
}  // namespace mcn::api
