#!/usr/bin/env python3
"""Diff two MCN_BENCH_JSON files (schema mcn-bench-v3, DESIGN.md §5).

Usage:
    tools/bench_diff.py BENCH_baseline.json BENCH_current.json \
        [--tolerance PCT] [--require-figs SUBSTR[,SUBSTR...]]

Compares the two records figure by figure (matched by figure title) and row
by row (matched by the `param` value):

  * result hashes must be byte-identical for every (figure, row, algo)
    present in both files — a mismatch means a refactor changed query
    *results*, and the script exits non-zero;
  * modeled time and buffer-miss deltas are printed per row, with rows
    whose |time delta| exceeds --tolerance (default 10%) flagged;
  * figures or rows present in only one file are listed as added/removed
    (informational, not an error);
  * observability-only row keys (the v3 "obs" object of registry metrics)
    are ignored entirely — only the lsa/cea measurement objects are
    compared, so obs counters may drift freely while a result-hash
    mismatch still hard-fails;
  * rows may carry "stall_model" / "io_backend" tags (DESIGN.md §13). When
    BOTH sides of a matched row carry a tag and the values differ, the
    comparison is refused (exit 2): modeled time under serial vs
    overlapped stall charging — or wall time on memory vs a file backend —
    are different quantities, not regressions. A tag missing on either
    side compares normally (pre-§13 baselines carry no tags);
  * --require-figs makes a regen run fail LOUDLY when expected figures are
    missing from the *current* file: each comma-separated entry must be a
    substring of at least one current figure title. A bench binary that
    aborts before its PrintFooter (a failed timing gate under `set -e`)
    silently drops its figure from the merged JSON — this flag turns that
    silence into a non-zero exit.

Exit codes: 0 clean, 1 result-hash mismatch or missing required figure,
2 usage/schema error or refused cross-model/cross-backend comparison.
"""

import argparse
import json
import sys

ALGOS = ("lsa", "cea")


def load(path):
    try:
        with open(path) as f:
            record = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if not str(record.get("schema", "")).startswith("mcn-bench-"):
        sys.exit(f"error: {path}: not an mcn bench record "
                 f"(schema={record.get('schema')!r})")
    return record


def by_figure(record):
    figures = {}
    for fig in record.get("figures", []):
        figures[fig["figure"]] = {
            "varying": fig.get("varying", ""),
            "rows": {row["param"]: row for row in fig.get("rows", [])},
        }
    return figures


def fmt_delta(old, new):
    if old == 0:
        return "   n/a " if new == 0 else "   new "
    pct = 100.0 * (new - old) / old
    return f"{pct:+6.1f}%"


def main():
    parser = argparse.ArgumentParser(
        description="Diff two mcn-bench JSON records.")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=10.0,
                        help="flag rows whose |modeled-time delta| exceeds "
                             "this percentage (default 10)")
    parser.add_argument("--require-figs", default="",
                        help="comma-separated substrings; each must match a "
                             "figure title in CURRENT, else exit non-zero")
    args = parser.parse_args()

    base = by_figure(load(args.baseline))
    curr = by_figure(load(args.current))

    missing_figs = []
    for needle in filter(None, (s.strip()
                                for s in args.require_figs.split(","))):
        if not any(needle in title for title in curr):
            missing_figs.append(needle)

    hash_mismatches = 0
    flagged = 0

    for title in sorted(set(base) - set(curr)):
        print(f"-- removed figure: {title}")
    for title in sorted(set(curr) - set(base)):
        print(f"++ added figure:   {title}")

    for title in sorted(set(base) & set(curr)):
        b_rows, c_rows = base[title]["rows"], curr[title]["rows"]
        varying = curr[title]["varying"] or base[title]["varying"]
        print(f"== {title}")
        header = (f"   {varying:<12} | algo | time Δ    | misses Δ  | hash")
        print(header)
        for param in sorted(set(b_rows) - set(c_rows)):
            print(f"   {param:<12} | removed row")
        for param in sorted(set(c_rows) - set(b_rows)):
            print(f"   {param:<12} | added row")
        for param in [p for p in b_rows if p in c_rows]:
            # Refuse cross-model / cross-backend comparisons (see module
            # docstring): both sides tagged + different tag = exit 2.
            for tag in ("stall_model", "io_backend"):
                b_tag = b_rows[param].get(tag)
                c_tag = c_rows[param].get(tag)
                if b_tag and c_tag and b_tag != c_tag:
                    print(f"error: {title!r} row {param!r}: refusing to "
                          f"compare {tag} {b_tag!r} (baseline) against "
                          f"{c_tag!r} (current) — rerun both records "
                          f"under the same configuration", file=sys.stderr)
                    sys.exit(2)
            for algo in ALGOS:
                b, c = b_rows[param].get(algo), c_rows[param].get(algo)
                if b is None or c is None:
                    continue
                hash_ok = b.get("result_hash") == c.get("result_hash")
                if not hash_ok:
                    hash_mismatches += 1
                time_delta = fmt_delta(b.get("avg_modeled_s", 0.0),
                                       c.get("avg_modeled_s", 0.0))
                miss_delta = fmt_delta(float(b.get("buffer_misses", 0)),
                                       float(c.get("buffer_misses", 0)))
                over = (abs(c.get("avg_modeled_s", 0.0) -
                            b.get("avg_modeled_s", 0.0)) >
                        args.tolerance / 100.0 *
                        max(b.get("avg_modeled_s", 0.0), 1e-12))
                if over:
                    flagged += 1
                marker = "  <-- " + (
                    "HASH MISMATCH" if not hash_ok else
                    f"exceeds {args.tolerance:g}%") if (not hash_ok or over) \
                    else ""
                print(f"   {param:<12} | {algo:<4} | {time_delta:>8} | "
                      f"{miss_delta:>8}  | "
                      f"{'ok' if hash_ok else 'MISMATCH'}{marker}")

    print()
    if missing_figs:
        for needle in missing_figs:
            print(f"FAILURE: required figure missing from {args.current}: "
                  f"no title contains {needle!r}")
        print("(a bench likely aborted before writing its figure — check "
              "the regen log above the merge)")
        return 1
    if hash_mismatches:
        print(f"FAILURE: {hash_mismatches} result-hash mismatch(es) — "
              f"query results changed.")
        return 1
    extra = (f"; {flagged} row(s) over the {args.tolerance:g}% time tolerance"
             if flagged else "")
    print(f"result hashes identical for every common row{extra}.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
