#!/usr/bin/env python3
"""Gate the observability layer's overhead on the throughput benches.

Compares QPS between two MCN_BENCH_JSON records — a baseline build (e.g.
-DMCN_OBS=0, tracing compiled out) and the default build (metrics on,
tracing off) — and fails when the default build's QPS falls more than
--max-loss-pct below the baseline's on any compared row (ISSUE: ≤ 2%).

Each record may hold several repetitions of the same figure (append runs
to one file, or pass multiple files per side): for every (figure, row,
algo) the MEDIAN qps across repetitions is compared. Best-of-N (the old
policy) is one-sided — a single lucky baseline run inflates the bar while
a single lucky current run hides a real regression — and made this gate
flaky on noisy shared runners. The median is robust to a stray outlier
on either side, and the per-run spread is printed for every over-budget
row so a flaky verdict is diagnosable from the log alone. At least
--min-reps repetitions per side (default 3) are required for the median
to mean anything; fewer is a usage error.

Usage:
    tools/check_overhead.py --baseline FILE [FILE...] --current FILE \
        [FILE...] [--max-loss-pct 2.0] [--min-reps 3] \
        [--figures SUBSTR[,SUBSTR...]]

Rows with qps == 0 (non-throughput figures) are skipped.
Exit codes: 0 within budget, 1 over budget, 2 usage/schema error.
"""

import argparse
import json
import statistics
import sys


def die(msg):
    """Usage/schema error: exit 2 (1 is reserved for an over-budget gate)."""
    print(msg, file=sys.stderr)
    sys.exit(2)


# Row "obs" counters surfaced when a row is over budget: the cache / batched
# I/O activity (DESIGN.md §13) that most plausibly explains a throughput
# shift that is NOT observability overhead.
DIAG_COUNTERS = (
    "mcn.service.cache_hit",
    "mcn.service.cache_miss",
    "mcn.service.cache_coalesced",
    "mcn.service.overlapped_misses",
    "mcn.io.batch_reads",
    "mcn.io.batch_pages",
)


def load_rows(paths, figure_filters):
    """Returns (runs, diag): (figure, param, algo) -> list of qps across
    all files/repetitions, and the same key -> {counter: value} for the
    DIAG_COUNTERS seen in the row's "obs" object (last repetition wins)."""
    runs = {}
    diag = {}
    for path in paths:
        try:
            with open(path) as f:
                record = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            die(f"error: cannot read {path}: {e}")
        if not str(record.get("schema", "")).startswith("mcn-bench-"):
            die(f"error: {path}: not an mcn bench record")
        for fig in record.get("figures", []):
            title = fig.get("figure", "")
            if figure_filters and not any(s in title
                                          for s in figure_filters):
                continue
            for row in fig.get("rows", []):
                obs = row.get("obs", {})
                for algo in ("lsa", "cea"):
                    qps = row.get(algo, {}).get("qps", 0.0)
                    if qps <= 0:
                        continue  # non-throughput row
                    key = (title, row.get("param", ""), algo)
                    runs.setdefault(key, []).append(qps)
                    found = {name: obs[name] for name in DIAG_COUNTERS
                             if name in obs}
                    if found:
                        diag[key] = found
    return runs, diag


def spread(values):
    """Human-readable per-run spread: 'min..max (n=N)'."""
    return f"{min(values):.2f}..{max(values):.2f} (n={len(values)})"


def main():
    parser = argparse.ArgumentParser(
        description="Observability overhead gate on bench QPS.")
    parser.add_argument("--baseline", nargs="+", required=True,
                        help="bench JSON(s) from the MCN_OBS=0 build")
    parser.add_argument("--current", nargs="+", required=True,
                        help="bench JSON(s) from the default build")
    parser.add_argument("--max-loss-pct", type=float, default=2.0)
    parser.add_argument("--min-reps", type=int, default=3,
                        help="minimum repetitions per compared row on each "
                             "side (default: 3)")
    parser.add_argument("--figures", default="throughput",
                        help="comma-separated figure-title substrings to "
                             "compare (default: 'throughput')")
    args = parser.parse_args()
    if args.min_reps < 1:
        die("error: --min-reps must be >= 1")

    filters = [s.strip() for s in args.figures.split(",") if s.strip()]
    base, base_diag = load_rows(args.baseline, filters)
    curr, curr_diag = load_rows(args.current, filters)

    common = sorted(k for k in base if k in curr)
    if not common:
        die("error: no comparable qps rows between the two sides "
            f"(figure filter: {filters})")
    for key in common:
        for side, rows in (("baseline", base), ("current", curr)):
            if len(rows[key]) < args.min_reps:
                die(f"error: {key[0]} / {key[1]} / {key[2]}: only "
                    f"{len(rows[key])} {side} repetition(s); the "
                    f"median needs at least {args.min_reps} "
                    "(pass more run files or lower --min-reps)")

    failures = 0
    print(f"{'figure / row / algo':<64} {'base qps':>10} {'curr qps':>10} "
          f"{'delta':>8}")
    for key in common:
        b = statistics.median(base[key])
        c = statistics.median(curr[key])
        loss_pct = 100.0 * (b - c) / b
        label = f"{key[0][:40]} / {key[1]} / {key[2]}"
        over = loss_pct > args.max_loss_pct
        if over:
            failures += 1
        print(f"{label:<64} {b:>10.2f} {c:>10.2f} {-loss_pct:>+7.1f}%"
              f"{'  <-- over budget' if over else ''}")
        if over:
            # The spread tells flaky from real: medians near each other's
            # ranges mean runner noise; disjoint ranges mean a regression.
            print(f"    baseline runs: {spread(base[key])}  "
                  f"current runs: {spread(curr[key])}")
            # Cache / batched-I/O counters: a hit-rate or batch-width skew
            # between the sides means the workloads differed — not obs
            # overhead (DESIGN.md §13).
            for side, d in (("baseline", base_diag), ("current", curr_diag)):
                if key in d:
                    pretty = " ".join(f"{name}={value:g}"
                                      for name, value in sorted(
                                          d[key].items()))
                    print(f"    {side} cache/io: {pretty}")

    if failures:
        print(f"FAILURE: {failures} row(s) lose more than "
              f"{args.max_loss_pct:g}% median QPS with observability on.")
        return 1
    print(f"all {len(common)} rows within the {args.max_loss_pct:g}% "
          f"overhead budget (median of >= {args.min_reps} runs per side).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
