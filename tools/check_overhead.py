#!/usr/bin/env python3
"""Gate the observability layer's overhead on the throughput benches.

Compares QPS between two MCN_BENCH_JSON records — a baseline build (e.g.
-DMCN_OBS=0, tracing compiled out) and the default build (metrics on,
tracing off) — and fails when the default build's best QPS falls more than
--max-loss-pct below the baseline's on any compared row (ISSUE: ≤ 2%).

Each record may hold several repetitions of the same figure (append runs
to one file, or pass multiple files per side): for every (figure, row,
algo) the MAX qps across repetitions is compared, which filters scheduler
noise the way best-of-N benchmarking does.

Usage:
    tools/check_overhead.py --baseline FILE [FILE...] --current FILE \
        [FILE...] [--max-loss-pct 2.0] [--figures SUBSTR[,SUBSTR...]]

Rows with qps == 0 on either side (non-throughput figures) are skipped.
Exit codes: 0 within budget, 1 over budget, 2 usage/schema error.
"""

import argparse
import json
import sys


def load_rows(paths, figure_filters):
    """(figure, param, algo) -> max qps across all files/repetitions."""
    best = {}
    for path in paths:
        try:
            with open(path) as f:
                record = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            sys.exit(f"error: cannot read {path}: {e}")
        if not str(record.get("schema", "")).startswith("mcn-bench-"):
            sys.exit(f"error: {path}: not an mcn bench record")
        for fig in record.get("figures", []):
            title = fig.get("figure", "")
            if figure_filters and not any(s in title
                                          for s in figure_filters):
                continue
            for row in fig.get("rows", []):
                for algo in ("lsa", "cea"):
                    qps = row.get(algo, {}).get("qps", 0.0)
                    key = (title, row.get("param", ""), algo)
                    best[key] = max(best.get(key, 0.0), qps)
    return best


def main():
    parser = argparse.ArgumentParser(
        description="Observability overhead gate on bench QPS.")
    parser.add_argument("--baseline", nargs="+", required=True,
                        help="bench JSON(s) from the MCN_OBS=0 build")
    parser.add_argument("--current", nargs="+", required=True,
                        help="bench JSON(s) from the default build")
    parser.add_argument("--max-loss-pct", type=float, default=2.0)
    parser.add_argument("--figures", default="throughput",
                        help="comma-separated figure-title substrings to "
                             "compare (default: 'throughput')")
    args = parser.parse_args()

    filters = [s.strip() for s in args.figures.split(",") if s.strip()]
    base = load_rows(args.baseline, filters)
    curr = load_rows(args.current, filters)

    common = sorted(k for k in base if k in curr
                    and base[k] > 0 and curr[k] > 0)
    if not common:
        sys.exit("error: no comparable qps rows between the two sides "
                 f"(figure filter: {filters})")

    failures = 0
    print(f"{'figure / row / algo':<64} {'base qps':>10} {'curr qps':>10} "
          f"{'delta':>8}")
    for key in common:
        b, c = base[key], curr[key]
        loss_pct = 100.0 * (b - c) / b
        label = f"{key[0][:40]} / {key[1]} / {key[2]}"
        over = loss_pct > args.max_loss_pct
        if over:
            failures += 1
        print(f"{label:<64} {b:>10.2f} {c:>10.2f} {-loss_pct:>+7.1f}%"
              f"{'  <-- over budget' if over else ''}")

    if failures:
        print(f"FAILURE: {failures} row(s) lose more than "
              f"{args.max_loss_pct:g}% QPS with observability on.")
        return 1
    print(f"all {len(common)} rows within the {args.max_loss_pct:g}% "
          f"overhead budget.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
