#!/usr/bin/env python3
"""Project lint gate: regex rules over the mcn tree.

Rules (each can be suppressed, see below):

  bare-sync-primitive
      std::mutex / std::lock_guard / std::unique_lock / std::scoped_lock /
      std::condition_variable (and friends) anywhere under src/mcn/ outside
      the annotated wrappers in common/mutex.h. Every lock must go through
      mcn::Mutex so Clang Thread Safety Analysis sees it.

  check-in-decode
      MCN_CHECK / MCN_DCHECK inside the wire / disk-image decode files.
      Decoders parse untrusted bytes and must reject malformed input with a
      Status, never a process abort. (Encode-side programmer-error CHECKs
      in the same files carry suppressions with justifications.)

  relaxed-disk-counters
      A fetch_add / fetch_sub in storage/disk_manager.* without an explicit
      std::memory_order_relaxed. The DiskManager counters are statistics,
      not synchronization; a seq_cst RMW on the page-read hot path is a
      silent perf regression (DESIGN.md §3).

  reinterpret-load-in-format
      reinterpret_cast<T*> of an integer/float type in the on-disk /
      on-wire format files. Casting misaligned buffer bytes to wider types
      is UB; format code loads through std::memcpy. (char* casts for
      iostream I/O are fine and not matched.)

Suppression syntax (a justifying comment is required by review convention):

  // mcn-lint: disable=<rule>            suppress on this line
  // mcn-lint: disable-next-line=<rule>  suppress on the following line
  // mcn-lint: disable-file=<rule>       suppress in the whole file

Exit status: 0 = clean, 1 = findings (printed one per line as
path:line: [rule] message), 2 = usage error.

  tools/mcn_lint.py [--root DIR]      lint the tree
  tools/mcn_lint.py --self-test       verify every rule fires on a seeded
                                      bad example (used by ctest)
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
import tempfile

# (rule, file matcher, line regex, message). File matchers are match()ed
# against the path relative to the repo root, with / separators.
RULES = [
    (
        "bare-sync-primitive",
        re.compile(r"src/mcn/.*\.(h|cc)$"),
        re.compile(
            r"std::(mutex|timed_mutex|recursive_mutex|shared_mutex|"
            r"lock_guard|unique_lock|scoped_lock|"
            r"condition_variable(_any)?)\b"
        ),
        "bare std sync primitive; use mcn::Mutex/MutexLock/CondVar "
        "(common/mutex.h) so thread-safety analysis sees the lock",
    ),
    (
        "check-in-decode",
        re.compile(r"src/mcn/(api/wire|storage/persistence)\.cc$"),
        re.compile(r"\bMCN_D?CHECK\b"),
        "CHECK in a decode path; untrusted input must come back as a "
        "Status, not a process abort",
    ),
    (
        "relaxed-disk-counters",
        re.compile(r"src/mcn/storage/disk_manager\.(h|cc)$"),
        re.compile(r"\bfetch_(add|sub)\((?!.*memory_order_relaxed)"),
        "DiskManager counter RMW without memory_order_relaxed; counters "
        "are statistics, keep them off the synchronization path",
    ),
    (
        "reinterpret-load-in-format",
        re.compile(
            r"src/mcn/(api/wire|storage/(persistence|slotted_page)|"
            r"net/landmark_index|shard/sharded_builder)\.(h|cc)$"
        ),
        re.compile(
            r"reinterpret_cast<\s*(const\s+)?"
            r"(u?int(8|16|32|64)_t|float|double|size_t)\s*\*\s*>"
        ),
        "typed reinterpret load in format code; load through std::memcpy "
        "(alignment + aliasing)",
    ),
]

SUPPRESS_RE = re.compile(
    r"mcn-lint:\s*(disable|disable-next-line|disable-file)=([\w,-]+)"
)


def parse_suppressions(lines):
    """Returns (file_wide: set, per_line: dict line_no -> set)."""
    file_wide: set[str] = set()
    per_line: dict[int, set[str]] = {}
    for i, line in enumerate(lines, start=1):
        for kind, rules in SUPPRESS_RE.findall(line):
            names = set(rules.split(","))
            if kind == "disable-file":
                file_wide |= names
            elif kind == "disable-next-line":
                per_line.setdefault(i + 1, set()).update(names)
            else:  # disable
                per_line.setdefault(i, set()).update(names)
    return file_wide, per_line


def lint_file(root: pathlib.Path, path: pathlib.Path):
    rel = path.relative_to(root).as_posix()
    active = [r for r in RULES if r[1].match(rel)]
    if not active:
        return []
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except (OSError, UnicodeDecodeError) as err:
        return [(rel, 0, "io", f"unreadable source file: {err}")]
    file_wide, per_line = parse_suppressions(lines)
    findings = []
    for rule, _, pattern, message in active:
        if rule in file_wide:
            continue
        for i, line in enumerate(lines, start=1):
            if not pattern.search(line):
                continue
            if rule in per_line.get(i, ()):
                continue
            findings.append((rel, i, rule, message))
    return findings


def lint_tree(root: pathlib.Path):
    findings = []
    for path in sorted((root / "src" / "mcn").rglob("*")):
        if path.suffix in (".h", ".cc") and path.is_file():
            findings.extend(lint_file(root, path))
    return findings


BAD_EXAMPLES = {
    # One seeded violation per rule; the self-test asserts each fires and
    # that every suppression spelling silences it.
    "bare-sync-primitive": (
        "src/mcn/exec/bad.h",
        "std::mutex mu_;\n",
    ),
    "check-in-decode": (
        "src/mcn/api/wire.cc",
        "MCN_CHECK(payload.size() > 0);\n",
    ),
    "relaxed-disk-counters": (
        "src/mcn/storage/disk_manager.cc",
        "page_reads_.fetch_add(1);\n",
    ),
    "reinterpret-load-in-format": (
        "src/mcn/storage/persistence.cc",
        "const uint32_t* v = reinterpret_cast<const uint32_t*>(p);\n",
    ),
}


def self_test() -> int:
    failures = 0
    for rule, (rel, bad_line) in BAD_EXAMPLES.items():
        for variant, text in {
            "fires": bad_line,
            "line": bad_line.rstrip() + f"  // mcn-lint: disable={rule}\n",
            "next-line": f"// mcn-lint: disable-next-line={rule}\n"
            + bad_line,
            "file": f"// mcn-lint: disable-file={rule}\n" + bad_line,
        }.items():
            with tempfile.TemporaryDirectory() as tmp:
                root = pathlib.Path(tmp)
                target = root / rel
                target.parent.mkdir(parents=True)
                target.write_text(text, encoding="utf-8")
                hits = [f for f in lint_tree(root) if f[2] == rule]
                expect_hit = variant == "fires"
                if bool(hits) != expect_hit:
                    failures += 1
                    print(
                        f"self-test FAILED: rule {rule}, variant {variant}: "
                        f"expected {'a finding' if expect_hit else 'silence'},"
                        f" got {hits}",
                        file=sys.stderr,
                    )
    if failures == 0:
        print(f"self-test OK: {len(BAD_EXAMPLES)} rules x 4 variants")
        return 0
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="repository root (default: the tree containing this script)",
    )
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if not (args.root / "src" / "mcn").is_dir():
        print(f"no src/mcn under {args.root}", file=sys.stderr)
        return 2
    findings = lint_tree(args.root)
    for rel, line, rule, message in findings:
        print(f"{rel}:{line}: [{rule}] {message}")
    if findings:
        print(f"{len(findings)} lint finding(s)", file=sys.stderr)
        return 1
    print("mcn_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
