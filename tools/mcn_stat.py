#!/usr/bin/env python3
"""Scrape a live query_server's metrics registry over the wire.

Speaks the introspection leg of the mcn wire protocol (DESIGN.md §9/§11):
sends a kGetMetrics (0x05) frame and decodes the kMetrics (0x85) reply —
counters, gauges and log-bucketed latency histograms by instrument name.
Pure stdlib; no dependency on the C++ build.

Usage:
    tools/mcn_stat.py [--host HOST] --port PORT [--watch SECONDS]
        [--trace-out PATH] [--prefix SUBSTR]

  --watch SECONDS   re-scrape every SECONDS, printing deltas for counters
  --trace-out PATH  additionally send kGetTrace and write the returned
                    Chrome trace_event JSON to PATH (ui.perfetto.dev)
  --prefix SUBSTR   only print instruments whose name contains SUBSTR

Exit codes: 0 ok, 1 protocol/connection error.
"""

import argparse
import socket
import struct
import sys
import time

WIRE_VERSION = 2
MSG_GET_METRICS = 0x05
MSG_GET_TRACE = 0x06
MSG_METRICS = 0x85
MSG_TRACE = 0x86

# Histogram bucket geometry (src/mcn/obs/metrics.h): identity buckets
# 0..15, then 8 sub-buckets per octave.
IDENTITY_BUCKETS = 16
SUB_BUCKETS = 8
NUM_BUCKETS = 496


class ProtocolError(Exception):
    pass


def bucket_lower_bound(index):
    if index < IDENTITY_BUCKETS:
        return float(index)
    octave = (index - IDENTITY_BUCKETS) // SUB_BUCKETS + 4
    sub = (index - IDENTITY_BUCKETS) % SUB_BUCKETS
    return float((1 << octave) + (sub << (octave - 3)))


def bucket_midpoint(index):
    lo = bucket_lower_bound(index)
    if index + 1 < NUM_BUCKETS:
        hi = bucket_lower_bound(index + 1)
    else:
        hi = lo * 1.125
    return (lo + hi) / 2.0


class Reader:
    """Bounds-checked cursor over one frame payload."""

    def __init__(self, data):
        self.data = data
        self.pos = 0

    def u8(self):
        if self.pos >= len(self.data):
            raise ProtocolError("truncated frame (u8)")
        b = self.data[self.pos]
        self.pos += 1
        return b

    def varint(self):
        result = 0
        shift = 0
        while True:
            b = self.u8()
            result |= (b & 0x7F) << shift
            if not b & 0x80:
                return result
            shift += 7
            if shift > 63:
                raise ProtocolError("varint too long")

    def f64(self):
        if self.pos + 8 > len(self.data):
            raise ProtocolError("truncated frame (f64)")
        (v,) = struct.unpack_from("<d", self.data, self.pos)
        self.pos += 8
        return v

    def blob(self):
        n = self.varint()
        if self.pos + n > len(self.data):
            raise ProtocolError("truncated frame (blob)")
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out

    def name(self):
        return self.blob().decode("utf-8", errors="replace")

    def done(self):
        return self.pos == len(self.data)


def send_frame(sock, msg_type):
    payload = bytes([WIRE_VERSION, msg_type])
    sock.sendall(struct.pack("<I", len(payload)) + payload)


def recv_exact(sock, n):
    chunks = []
    while n:
        chunk = sock.recv(n)
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock):
    (length,) = struct.unpack("<I", recv_exact(sock, 4))
    return recv_exact(sock, length)


def read_status(r):
    code = r.varint()
    message = r.name()
    return code, message


def scrape_metrics(sock):
    """Returns (counters, gauges, hists): name-keyed dicts; hists map to
    (sum, [(index, count), ...])."""
    send_frame(sock, MSG_GET_METRICS)
    r = Reader(recv_frame(sock))
    if r.u8() != WIRE_VERSION:
        raise ProtocolError("wire version mismatch")
    if r.u8() != MSG_METRICS:
        raise ProtocolError("unexpected reply type (want kMetrics)")
    code, message = read_status(r)
    if code != 0:
        raise ProtocolError(f"server status {code}: {message}")
    counters = {}
    for _ in range(r.varint()):
        name = r.name()
        counters[name] = r.varint()
    gauges = {}
    for _ in range(r.varint()):
        name = r.name()
        gauges[name] = r.f64()
    hists = {}
    for _ in range(r.varint()):
        name = r.name()
        total = r.varint()
        buckets = [(r.varint(), r.varint()) for _ in range(r.varint())]
        hists[name] = (total, buckets)
    if not r.done():
        raise ProtocolError("trailing bytes in kMetrics reply")
    return counters, gauges, hists


def scrape_trace(sock):
    send_frame(sock, MSG_GET_TRACE)
    r = Reader(recv_frame(sock))
    if r.u8() != WIRE_VERSION:
        raise ProtocolError("wire version mismatch")
    if r.u8() != MSG_TRACE:
        raise ProtocolError("unexpected reply type (want kTrace)")
    code, message = read_status(r)
    if code != 0:
        raise ProtocolError(f"server status {code}: {message}")
    return r.blob()


def hist_quantile(buckets, q):
    count = sum(c for _, c in buckets)
    if count == 0:
        return 0.0
    rank = max(1, int(-(-q * count // 1)))  # ceil(q * count), at least 1
    seen = 0
    for index, c in buckets:
        seen += c
        if seen >= rank:
            return bucket_midpoint(index)
    return bucket_midpoint(buckets[-1][0])


def print_snapshot(counters, gauges, hists, prefix, previous=None):
    def keep(name):
        return prefix in name

    rows = []
    for name in sorted(counters):
        if not keep(name):
            continue
        delta = ""
        if previous is not None:
            delta = f"  (+{counters[name] - previous.get(name, 0)})"
        rows.append(f"  {name:<44} {counters[name]:>14}{delta}")
    for name in sorted(gauges):
        if keep(name):
            rows.append(f"  {name:<44} {gauges[name]:>14.6g}")
    for name in sorted(hists):
        if not keep(name):
            continue
        value_sum, buckets = hists[name]
        count = sum(c for _, c in buckets)
        mean = value_sum / count if count else 0.0
        p50 = hist_quantile(buckets, 0.50)
        p99 = hist_quantile(buckets, 0.99)
        rows.append(f"  {name:<44} count={count} mean={mean:.1f} "
                    f"p50={p50:.1f} p99={p99:.1f}")

    # Derived summaries (DESIGN.md §13): result-cache hit rate and batched
    # read width, shown whenever the underlying counters are present.
    hits = counters.get("mcn.service.cache_hit", 0)
    misses = counters.get("mcn.service.cache_miss", 0)
    coalesced = counters.get("mcn.service.cache_coalesced", 0)
    if keep("mcn.service.cache") and (hits or misses or coalesced):
        served = hits + coalesced
        total = served + misses
        rate = 100.0 * served / total if total else 0.0
        rows.append(f"  {'cache hit rate (hits+coalesced)':<44} "
                    f"{rate:>13.1f}%")
    batches = counters.get("mcn.io.batch_reads", 0)
    pages = counters.get("mcn.io.batch_pages", 0)
    if keep("mcn.io.batch") and batches:
        rows.append(f"  {'avg pages per batched read':<44} "
                    f"{pages / batches:>14.2f}")
    print("\n".join(rows) if rows else "  (no matching instruments)")


def main():
    parser = argparse.ArgumentParser(
        description="Scrape a live mcn query_server's metrics registry.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--watch", type=float, default=0.0,
                        help="re-scrape every N seconds (0 = once)")
    parser.add_argument("--trace-out", default="",
                        help="also pull the trace buffers (kGetTrace) and "
                             "write the Chrome JSON here")
    parser.add_argument("--prefix", default="",
                        help="only show instruments containing this substring")
    args = parser.parse_args()

    try:
        sock = socket.create_connection((args.host, args.port), timeout=10)
    except OSError as e:
        sys.exit(f"error: cannot connect to {args.host}:{args.port}: {e}")

    try:
        previous = None
        while True:
            counters, gauges, hists = scrape_metrics(sock)
            stamp = time.strftime("%H:%M:%S")
            print(f"-- {args.host}:{args.port} @ {stamp} --")
            print_snapshot(counters, gauges, hists, args.prefix, previous)
            if args.watch <= 0:
                break
            previous = counters
            time.sleep(args.watch)
        if args.trace_out:
            trace = scrape_trace(sock)
            with open(args.trace_out, "wb") as f:
                f.write(trace)
            print(f"wrote {len(trace)} trace bytes to {args.trace_out} "
                  f"(load in https://ui.perfetto.dev)")
    except ProtocolError as e:
        sys.exit(f"error: {e}")
    except KeyboardInterrupt:
        pass
    finally:
        sock.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
