#!/usr/bin/env bash
# Regenerates BENCH_current.json (schema mcn-bench-v3, DESIGN.md §5).
#
# Runs the tracked reference benchmarks at default scale — each binary
# writes its own JSON record, then the figure arrays are merged in run
# order. Usage, from the repo root (build/ configured for Release):
#
#   cmake --build build -j --target bench_fig08a_skyline_facilities \
#       bench_fig10a_topk_facilities bench_service_throughput \
#       bench_parallel_expansion bench_shard_scaling bench_wire_throughput \
#       bench_fault_recovery bench_prune_index bench_io_overlap
#   tools/regen_bench.sh [output=BENCH_current.json]
#
# Diff against the tracked baseline with:
#   tools/bench_diff.py BENCH_baseline.json BENCH_current.json
#
# Takes a few minutes at the default MCN_BENCH_SCALE=0.15.
set -euo pipefail

out="${1:-BENCH_current.json}"
build="${BUILD_DIR:-build}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

benches=(
  bench_fig08a_skyline_facilities
  bench_fig10a_topk_facilities
  bench_service_throughput
  bench_parallel_expansion
  bench_shard_scaling
  bench_wire_throughput
  bench_fault_recovery
  bench_prune_index
  bench_io_overlap
)

# One entry per bench above: the figure-title substring the merged JSON
# must contain. Keeps a gate-aborted bench (set -e stops before the merge,
# or a stale output file survives) from silently shipping as "regenerated".
required_figs="Figure 8(a),Figure 10(a),Service throughput,Service result cache,Parallel d-expansion,Shard scaling,Wire throughput,Fault recovery,Prune index,Overlapped I/O"

for bench in "${benches[@]}"; do
  echo "== $bench =="
  MCN_BENCH_JSON="$tmp/$bench.json" "$build/$bench"
done

python3 - "$out" "$tmp" "${benches[@]}" <<'EOF'
import json, sys
out, tmp, benches = sys.argv[1], sys.argv[2], sys.argv[3:]
merged = None
for bench in benches:
    with open(f"{tmp}/{bench}.json") as f:
        record = json.load(f)
    if merged is None:
        merged = record
    else:
        assert record["schema"] == merged["schema"], bench
        merged["figures"] += record["figures"]
with open(out, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
print(f"wrote {out}: {len(merged['figures'])} figures")
EOF

# Fail loudly when any expected figure is missing from what we just wrote.
"$(dirname "$0")/bench_diff.py" "$out" "$out" --require-figs "$required_figs" \
  > /dev/null || {
    echo "regen_bench: FAILED figure completeness check for $out" >&2
    exit 1
  }
echo "figure completeness check passed ($out)"
