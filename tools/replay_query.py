#!/usr/bin/env python3
"""Replay a slow-query log entry against a live server, byte for byte.

The flight recorder's slow-query log (DESIGN.md §11) carries each offending
query's spec as `replay_hex`: the complete kExecute wire frame (length
prefix included) that re-runs the identical query. This tool sends those
bytes verbatim — no re-encoding, so the replay is exactly the frame the
server originally decoded — and summarizes the kResponse reply (status,
result hash, logical I/O), which can be compared against the digest's
`result_hash` field for a deterministic-replay check.

Usage:
    tools/replay_query.py [--host HOST] --port PORT HEX
    tools/replay_query.py --port PORT --from-log slow.log [--seq N]

  HEX         the replay_hex string (or a file containing it)
  --from-log  read a slow-query log (one JSON object per line) and replay
              the entry with "seq" == --seq (default: the last entry)

Exit codes: 0 replay OK, 1 error or non-OK query status.
"""

import argparse
import json
import os
import socket
import struct
import sys

WIRE_VERSION = 2
MSG_RESPONSE = 0x81

STATUS_NAMES = [
    "OK", "InvalidArgument", "NotFound", "OutOfRange", "Corruption",
    "IOError", "FailedPrecondition", "Unimplemented", "Internal",
    "DeadlineExceeded", "ResourceExhausted", "Cancelled",
]

KIND_NAMES = {0: "skyline", 1: "top-k", 2: "incremental"}


class ProtocolError(Exception):
    pass


class Reader:
    def __init__(self, data):
        self.data = data
        self.pos = 0

    def u8(self):
        if self.pos >= len(self.data):
            raise ProtocolError("truncated frame (u8)")
        b = self.data[self.pos]
        self.pos += 1
        return b

    def varint(self):
        result = 0
        shift = 0
        while True:
            b = self.u8()
            result |= (b & 0x7F) << shift
            if not b & 0x80:
                return result
            shift += 7
            if shift > 63:
                raise ProtocolError("varint too long")

    def f64(self):
        (v,) = struct.unpack_from("<d", self.data, self.pos)
        self.pos += 8
        return v

    def u64(self):
        (v,) = struct.unpack_from("<Q", self.data, self.pos)
        self.pos += 8
        return v

    def blob(self):
        n = self.varint()
        if self.pos + n > len(self.data):
            raise ProtocolError("truncated frame (blob)")
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out


def recv_exact(sock, n):
    chunks = []
    while n:
        chunk = sock.recv(n)
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def decode_response(payload):
    """Decodes a kResponse payload into a summary dict."""
    r = Reader(payload)
    if r.u8() != WIRE_VERSION:
        raise ProtocolError("wire version mismatch")
    if r.u8() != MSG_RESPONSE:
        raise ProtocolError("unexpected reply type (want kResponse)")
    code = r.varint()
    message = r.blob().decode("utf-8", errors="replace")
    kind = r.u8()
    exhausted = r.u8()
    dim = r.varint()
    rows = r.varint()
    for _ in range(rows):
        r.varint()  # facility
        if kind == 0:
            r.varint()  # known_mask
        else:
            r.f64()  # score
        for _ in range(dim):
            r.f64()
    result_hash = r.u64()
    misses = r.varint()
    accesses = r.varint()
    exec_seconds = r.f64()
    return {
        "status": STATUS_NAMES[code] if code < len(STATUS_NAMES) else code,
        "message": message,
        "kind": KIND_NAMES.get(kind, kind),
        "exhausted": bool(exhausted),
        "rows": rows,
        "result_hash": f"{result_hash:016x}",
        "buffer_misses": misses,
        "buffer_accesses": accesses,
        "exec_seconds": exec_seconds,
        "ok": code == 0,
    }


def normalize_hash(h):
    """Digest hashes are 16-digit hex strings; tolerate raw integers too."""
    if h is None:
        return None
    if isinstance(h, int):
        return f"{h:016x}"
    s = str(h).strip().lower()
    if s.startswith("0x"):
        s = s[2:]
    return s.zfill(16)


def load_hex(args):
    if args.from_log:
        entries = []
        with open(args.from_log) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                # Server log lines carry a "[mcn slow-query] " prefix when
                # the recorder writes to stderr; strip anything before '{'.
                brace = line.find("{")
                if brace < 0:
                    continue
                try:
                    entries.append(json.loads(line[brace:]))
                except json.JSONDecodeError:
                    continue
        if not entries:
            sys.exit(f"error: no slow-query entries in {args.from_log}")
        if args.seq is not None:
            matches = [e for e in entries if e.get("seq") == args.seq]
            if not matches:
                sys.exit(f"error: no entry with seq={args.seq}")
            entry = matches[0]
        else:
            entry = entries[-1]
        original_hash = normalize_hash(entry.get("result_hash"))
        print(f"replaying seq={entry.get('seq')} kind={entry.get('kind')} "
              f"latency={entry.get('latency_ms')}ms "
              f"original hash={original_hash}")
        return entry["replay_hex"], original_hash
    hex_arg = args.hex
    if hex_arg and os.path.exists(hex_arg):
        with open(hex_arg) as f:
            hex_arg = f.read().strip()
    if not hex_arg:
        sys.exit("error: pass HEX or --from-log")
    return hex_arg, None


def main():
    parser = argparse.ArgumentParser(
        description="Replay a slow-query log entry byte for byte.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("hex", nargs="?", default="",
                        help="replay_hex string, or a file containing it")
    parser.add_argument("--from-log", default="",
                        help="slow-query log file to pull the entry from")
    parser.add_argument("--seq", type=int, default=None,
                        help="digest seq to replay (with --from-log)")
    args = parser.parse_args()

    replay_hex, original_hash = load_hex(args)
    try:
        frame = bytes.fromhex(replay_hex)
    except ValueError as e:
        sys.exit(f"error: bad hex: {e}")
    if len(frame) < 6:
        sys.exit("error: frame too short to be a wire frame")

    try:
        sock = socket.create_connection((args.host, args.port), timeout=30)
    except OSError as e:
        sys.exit(f"error: cannot connect to {args.host}:{args.port}: {e}")
    try:
        sock.sendall(frame)  # verbatim: length prefix is already in the hex
        (length,) = struct.unpack("<I", recv_exact(sock, 4))
        summary = decode_response(recv_exact(sock, length))
    except ProtocolError as e:
        sys.exit(f"error: {e}")
    finally:
        sock.close()

    for key, value in summary.items():
        if key != "ok":
            print(f"  {key:<16} {value}")
    if original_hash is not None:
        match = summary["result_hash"] == original_hash
        print(f"  replay hash {'MATCHES' if match else 'DIFFERS FROM'} "
              f"the recorded digest")
        return 0 if (summary["ok"] and match) else 1
    return 0 if summary["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
